"""The trace-driven data-center simulation (paper Fig. 11-B).

Wires every substrate together: the workload trace drives per-machine
utilisation; the attacker overrides its captured nodes; the cluster model
turns utilisation into rack power; the active defense scheme moves battery
and supercap energy; breakers integrate the resulting utility draw; and
the metrics layer records overloads, trips, throughput and SOC maps.

Each step runs an explicit pipeline of stages —

    workload -> attacker overrides -> power demand -> defense dispatch
             -> protection/breakers -> accounting

— each an individually testable method operating on a shared
:class:`StepContext`. Occurrences (overloads, trips, policy escalations,
shedding, vDEB reassignments, capping flips) are published as typed
:class:`~repro.sim.events.SimEvent` objects on the simulation's
:class:`~repro.sim.events.EventBus`; :class:`SimResult` collects them
through subscriptions rather than ad-hoc list appends.

Timing follows the paper's two-scale structure: month-long background runs
step at the trace interval, attack windows step at sub-second resolution.
One call can mix both — see :meth:`DataCenterSimulation.run_segments` and
:class:`~repro.sim.runner.Runner`.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..attack.attacker import Attacker
from ..config import DataCenterConfig
from ..errors import SimulationError
from ..faults.spec import FaultPlan
from ..grid.spec import GridPlan
from ..power.breaker import TripEvent
from ..kernels import resolve_kernels
from ..power.breaker_kernels import make_breaker_bank
from ..power.topology import compile_topology, pdu_breaker_id
from ..workload.cluster import ClusterModel
from ..workload.trace import UtilizationTrace
from ..defense.base import DefenseScheme, Dispatch, SchemeContext, StepState
from .engine import Engine, RunResult
from .events import (
    BreakerTripped,
    EventBus,
    FaultEvent,
    FaultInjected,
    GridEvent,
    OverloadEvent,
    SimEvent,
)
from .fastforward import FastForwardStats, SegmentFastForward
from .recorder import Recorder
from .runner import AttackWindow, Segment

__all__ = [
    "DataCenterSimulation",
    "OverloadEvent",
    "SimResult",
    "SimSnapshot",
    "StepContext",
    "truncate_snapshot_schedule",
]

#: Format version of :class:`SimSnapshot` payloads. Bumped whenever the
#: pickled object graph changes incompatibly.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SimSnapshot:
    """A versioned, self-contained checkpoint of a whole simulation.

    The payload is a pickle of the :class:`DataCenterSimulation` object
    graph — physics, control state, meters, sensors, RNG streams, the
    paused run cursor and its partial result. Snapshots are plain bytes,
    so they ship through process pools and journals unchanged.

    Attributes:
        version: Payload format version (see :data:`SNAPSHOT_VERSION`).
        payload: The pickled simulation.
    """

    version: int
    payload: bytes


@dataclass
class _PausedRun:
    """Cursor of a run paused by :meth:`DataCenterSimulation.run_prefix`.

    Attributes:
        schedule: The full validated segment schedule.
        segment_index: Index of the segment to resume into (equal to
            ``len(schedule)`` when the prefix consumed everything).
        steps_done: Steps already executed inside that segment.
        result: The partially accumulated run result.
    """

    schedule: "tuple[Segment, ...]"
    segment_index: int
    steps_done: int
    result: "SimResult"


@dataclass
class SimResult:
    """Everything a run produced.

    Attributes:
        scheme: Name of the defense scheme evaluated.
        start_s: Run start time.
        end_s: Run end time (early if stopped on a trip).
        attack_start_s: When the attacker engaged, if any.
        overloads: Effective-attack events, in time order.
        trips: Breaker trips, in time order.
        events: The full typed event stream of the run, in publication
            order (overloads, trips, policy escalations, shedding, vDEB
            reassignments, capping flips, fault edges).
        faults: Fault-injection edges (:class:`FaultInjected` /
            :class:`FaultCleared`) in publication order — the per-fault
            accounting for degraded-mode runs.
        grid: Grid-disturbance occurrences (window edges from the
            injector plus the schemes' ride-through/reserve
            transitions) in publication order.
        delivered_work: Integrated delivered throughput (machine-seconds).
        demanded_work: Integrated demanded throughput (machine-seconds).
        recorder: Step-aligned time series.
    """

    scheme: str
    start_s: float
    end_s: float
    attack_start_s: "float | None"
    overloads: "list[OverloadEvent]" = field(default_factory=list)
    trips: "list[TripEvent]" = field(default_factory=list)
    events: "list[SimEvent]" = field(default_factory=list)
    faults: "list[FaultEvent]" = field(default_factory=list)
    grid: "list[GridEvent]" = field(default_factory=list)
    delivered_work: float = 0.0
    demanded_work: float = 0.0
    recorder: Recorder = field(default_factory=Recorder)

    @property
    def survival_time_s(self) -> "float | None":
        """Attack start to first breaker trip; ``None`` when censored.

        This is the paper's headline metric ("from the beginning of the
        attack to the time the first overload happens"). Trips that
        pre-date the attack (background overloads during a lead-in
        segment) do not count against the attacker. A run that ends with
        no qualifying trip survived the whole window — report the
        censored value via :meth:`survival_or_window`.
        """
        if self.attack_start_s is None:
            return None
        for trip in self.trips:
            if trip.time_s >= self.attack_start_s:
                return trip.time_s - self.attack_start_s
        return None

    def survival_or_window(self) -> float:
        """Survival time, or the full attack window when censored."""
        survival = self.survival_time_s
        if survival is not None:
            return survival
        start = self.attack_start_s if self.attack_start_s is not None else self.start_s
        return self.end_s - start

    @property
    def first_overload_s(self) -> "float | None":
        """Time of the first effective attack, if any."""
        return self.overloads[0].time_s if self.overloads else None

    @property
    def throughput_ratio(self) -> float:
        """Delivered over demanded work across the run (Fig. 16 metric)."""
        if self.demanded_work <= 0.0:
            return 1.0
        return self.delivered_work / self.demanded_work

    def events_of_type(self, event_type: type) -> "list[SimEvent]":
        """Events of the run that are instances of ``event_type``."""
        return [e for e in self.events if isinstance(e, event_type)]

    @property
    def fault_counts(self) -> "dict[str, int]":
        """Injection count per fault kind (clears are not counted)."""
        counts: "dict[str, int]" = {}
        for event in self.faults:
            if isinstance(event, FaultInjected):
                counts[event.fault] = counts.get(event.fault, 0) + 1
        return counts


@dataclass
class StepContext:
    """Mutable per-step state handed from pipeline stage to stage.

    Attributes:
        time_s: Current simulation time.
        dt: Step length.
        result: The accumulating run result.
        record: Whether this step's channels are recorded.
        down: Racks currently dark (tripped and unrepaired).
        util: Per-machine utilisation (trace, then attacker overrides).
        capped_servers: Per-server capping mask in force this tick (the
            scheme's decision from the *previous* tick — management acts
            one tick delayed, like real firmware).
        asleep: Per-server sleep mask in force this tick (same delay).
        demand: Per-rack electrical demand.
        state: The scheme-visible observation for this tick.
        dispatch: The scheme's decision for this tick.
        utility: Per-rack utility-feed draw after the dispatch.
        delivered_inc: Exact addend this step contributed to
            ``result.delivered_work`` (captured so the fast-forward
            replay repeats the identical float addition).
        demanded_inc: Exact addend contributed to ``demanded_work``.
        row_scalars: The scalar recorder row appended this step, or
            ``None`` when the step was not recorded.
        row_vectors: The vector channels appended this step (live
            references — copy before retaining), or ``None``.
    """

    time_s: float
    dt: float
    result: SimResult
    record: bool = True
    down: "list[int]" = field(default_factory=list)
    util: "np.ndarray | None" = None
    capped_servers: "np.ndarray | None" = None
    asleep: "np.ndarray | None" = None
    demand: "np.ndarray | None" = None
    state: "StepState | None" = None
    dispatch: "Dispatch | None" = None
    utility: "np.ndarray | None" = None
    delivered_inc: float = 0.0
    demanded_inc: float = 0.0
    row_scalars: "dict[str, float] | None" = None
    row_vectors: "dict[str, np.ndarray] | None" = None


class DataCenterSimulation:
    """One configured data center + workload + (optional) attacker.

    Args:
        config: Data-center configuration.
        trace: Machine-utilisation workload; must cover the run window and
            have at least as many machines as the cluster has servers.
        scheme_factory: Class (or callable) building the defense scheme
            from a :class:`SchemeContext` — e.g. an entry of
            :data:`repro.defense.SCHEMES`.
        attacker: Optional adversary whose nodes override the trace.
        overshoot_tolerance: Breaker-rating margin over the budget — the
            "x % overshoot the data center can tolerate" of paper Fig. 8.
        management_interval_s: Metering/actuation cadence of the software
            plane (capping, shedding, VP detection).
        repair_time_s: Re-arm a tripped breaker after this long; ``None``
            leaves it open (survival-style runs).
        initial_battery_soc: Starting SOC for the rack batteries.
        backend: Physics implementation: ``"vectorized"`` (array kernels,
            the default) or ``"scalar"`` (per-object oracle classes). Both
            produce identical results — enforced by the differential
            harness in ``tests/test_vectorized_equivalence.py``.
        kernels: Step-kernel tier, orthogonal to ``backend``:
            ``"numpy"`` (default) evaluates the vector expressions;
            ``"compiled"`` fuses the hot per-step path (defense
            dispatch, breaker thermals) into numba/C loops over the
            same arrays — bit-identical by construction, enforced by
            ``tests/test_kernels.py``. Requesting ``"compiled"``
            without numba or a C compiler warns once and runs the
            numpy tier; combined with ``backend="scalar"`` it is a
            documented no-op (the scalar oracle stays pure Python).
        fault_plan: Optional declarative fault schedule; when given, a
            :class:`~repro.faults.FaultInjector` stage runs between the
            demand and defense stages, degrading telemetry, sensors,
            comms, batteries, FETs and breaker enforcement exactly as the
            plan prescribes. ``None`` leaves the pipeline untouched —
            runs without a plan are bit-identical to builds that predate
            fault injection.
        grid_plan: Optional declarative grid-disturbance schedule; when
            given, a :class:`~repro.grid.injector.GridInjector` stage
            runs between the fault and defense stages, deriving the
            per-rack feed factor, the breaker enforcement derate and
            the frequency-regulation duty command exactly as the plan
            prescribes. ``None`` leaves the pipeline untouched — runs
            without a plan are bit-identical to builds that predate
            grid modelling.
        telemetry_ttl_s: Staleness TTL for the scheme's telemetry view;
            defaults to three management intervals, so one missed meter
            publication is tolerated and held, while a sustained dropout
            forces the fail-safe path.
        fast_forward: Enable quiescent-segment fast-forward (see
            :mod:`repro.sim.fastforward`). Results are bit-identical to
            per-step execution — the controller only jumps blocks it has
            proven periodic and refuses whenever any precondition is
            unclear. Off by default; :attr:`fast_forward_stats` reports
            what the layer did.
        recorder_row_budget: Bound every run's recorder to at most this
            many rows per channel: once a channel fills the budget it is
            decimated in place (every other row dropped, sampling stride
            doubled), so month-long warehouse-scale runs keep constant
            memory while the retained rows stay a uniform subsample.
            ``None`` (default) records every offered row.
        record_pdu_aggregates: Record per-PDU vector channels
            (``pdu_utility_w``, ``pdu_soc``) instead of the per-rack
            ``rack_utility_w`` / ``rack_soc`` matrices — the streaming
            aggregation that keeps 1000-rack recorder output narrow.
    """

    def __init__(
        self,
        config: DataCenterConfig,
        trace: UtilizationTrace,
        scheme_factory: "type[DefenseScheme]",
        attacker: "Attacker | None" = None,
        overshoot_tolerance: float = 0.03,
        management_interval_s: float = 10.0,
        repair_time_s: "float | None" = None,
        initial_battery_soc: "float | list[float]" = 1.0,
        backend: str = "vectorized",
        kernels: str = "numpy",
        fault_plan: "FaultPlan | None" = None,
        grid_plan: "GridPlan | None" = None,
        telemetry_ttl_s: "float | None" = None,
        fast_forward: bool = False,
        recorder_row_budget: "int | None" = None,
        record_pdu_aggregates: bool = False,
    ) -> None:
        if overshoot_tolerance < 0.0:
            raise SimulationError("overshoot tolerance must be non-negative")
        if management_interval_s <= 0.0:
            raise SimulationError("management interval must be positive")
        if backend not in ("scalar", "vectorized"):
            raise SimulationError(f"unknown backend: {backend!r}")
        self.backend = backend
        # Kernel tier, resolved once: "compiled" degrades to "numpy"
        # (with one warning) when no provider is installed, so the rest
        # of the engine can branch on the effective tier alone.
        self.kernels = resolve_kernels(kernels)
        self.config = config
        self._overshoot_tolerance = overshoot_tolerance
        self.cluster = ClusterModel(config.cluster)
        if trace.machines < self.cluster.servers:
            raise SimulationError(
                f"trace has {trace.machines} machines; cluster needs "
                f"{self.cluster.servers}"
            )
        self.trace = trace
        # Results capture their own event streams via subscriptions, so
        # the long-lived bus itself does not record.
        self.bus = EventBus(record=False)
        racks = self.cluster.racks
        budget_w = config.cluster.pdu_budget_w
        # The compiled hierarchy: rack -> PDU membership, contiguous
        # segment offsets and per-PDU budgets as flat index arrays. A
        # flat (single-PDU) cluster keeps the historical expressions and
        # bank layout bit-for-bit.
        self.topology = compile_topology(config.cluster)
        topo = self.topology
        self._n_mid = topo.n_mid_breakers
        if topo.has_pdu_tier:
            pdu_of_rack = topo.rack_to_pdu
            self.soft_limits_w = (
                topo.pdu_budget_w[pdu_of_rack]
                / topo.pdu_rack_counts[pdu_of_rack]
            )
        else:
            self.soft_limits_w = np.full(racks, budget_w / racks)
        self.rating_w = self.soft_limits_w * (1.0 + overshoot_tolerance)
        shape = config.cluster.rack.breaker
        # One bank holds every breaker: racks 0..n-1, then any mid-tier
        # PDU breakers, then the cluster PDU breaker last, so protection
        # advances in one call.
        self._cluster_rated_w = budget_w * (1.0 + overshoot_tolerance)
        self._pdu_rated_w = topo.pdu_budget_w * (1.0 + overshoot_tolerance)
        bank_ratings = np.empty(topo.n_breakers)
        bank_ratings[:racks] = self.rating_w
        if self._n_mid:
            bank_ratings[racks:-1] = self._pdu_rated_w
        bank_ratings[-1] = self._cluster_rated_w
        self.breakers = make_breaker_bank(
            backend, shape, bank_ratings, kernels=self.kernels
        )
        if telemetry_ttl_s is None:
            telemetry_ttl_s = 3.0 * management_interval_s
        if telemetry_ttl_s <= 0.0:
            raise SimulationError("telemetry TTL must be positive")
        self.scheme: DefenseScheme = scheme_factory(
            SchemeContext(
                config=config,
                cluster=self.cluster,
                initial_soft_limits_w=self.soft_limits_w,
                branch_rating_w=self.rating_w,
                seed=config.seed,
                initial_battery_soc=initial_battery_soc,
                bus=self.bus,
                backend=backend,
                telemetry_ttl_s=telemetry_ttl_s,
                topology=self.topology,
                kernels=self.kernels,
            )
        )
        self._mgmt_interval = management_interval_s
        self._repair_time_s = repair_time_s
        # Management-meter accumulators (energy / utilisation integrals).
        self._meter_energy = np.zeros(racks)
        self._meter_util = np.zeros(self.cluster.servers)
        self._meter_time = 0.0
        # Sane priors until the first interval completes: the meters
        # report the provisioned budgets, not zero (which would make the
        # software plane slam every limit to the floor at t=0).
        self._metered_rack_avg = self.soft_limits_w.copy()
        self._metered_server_util = np.zeros(self.cluster.servers)
        self._rack_down_until = np.full(racks, -np.inf)
        self._was_over = np.zeros(topo.n_breakers, dtype=bool)
        # Rack index of every server — machine m lives in rack
        # m // servers_per_rack; hoisted out of the per-step demand stage.
        self._server_rack_index = (
            np.arange(self.cluster.servers) // config.cluster.rack.servers
        )
        # Reusable bank-wide buffers: ratings and loads, with mid-tier
        # entries (if any) between the racks and the cluster entry last.
        # The bank reads, never stores, these.
        self._ratings_buf = bank_ratings.copy()
        self._loads_buf = np.empty(topo.n_breakers)
        self._applied_soft_limits_w = self.soft_limits_w.copy()
        # Enforcement derating: a mis-rated breaker trips at derate *
        # nominal while overload *detection* keeps the nominal rating —
        # the operator's view of "over budget" is unchanged; only the
        # (faulty) hardware threshold moves.
        self._breaker_derate: "np.ndarray | None" = None
        self._derate_dirty = False
        if recorder_row_budget is not None and recorder_row_budget < 2:
            raise SimulationError("recorder row budget must be at least 2")
        self._recorder_row_budget = recorder_row_budget
        self._record_pdu_aggregates = bool(record_pdu_aggregates)
        self.fast_forward = bool(fast_forward)
        self.fast_forward_stats = FastForwardStats()
        self._paused: "_PausedRun | None" = None
        self.attacker = None
        self._attack_nodes: "np.ndarray | None" = None
        self._attack_racks: "tuple[int, ...]" = ()
        if attacker is not None:
            self.attach_attacker(attacker)
        # Deferred import: the injector module subscribes to sim.events,
        # so importing it at module scope would cycle through repro.faults.
        from ..faults.injector import FaultInjector

        self._injector: "FaultInjector | None" = None
        if fault_plan is not None and len(fault_plan) > 0:
            self._injector = FaultInjector(fault_plan, self)
        # Same deferred-import reasoning as the fault injector.
        from ..grid.injector import GridInjector

        self._grid: "GridInjector | None" = None
        self._grid_derate: "np.ndarray | None" = None
        if grid_plan is not None and len(grid_plan) > 0:
            self._grid = GridInjector(grid_plan, self)
        #: The step pipeline, in execution order. Each stage reads and
        #: extends the :class:`StepContext`; tests (and exotic workloads)
        #: may call stages individually or swap the tuple. The fault and
        #: grid stages only exist when a plan was supplied, so no-plan
        #: runs execute the exact historical pipeline.
        stages = [
            self.stage_workload,
            self.stage_attack,
            self.stage_demand,
            self.stage_defense,
            self.stage_protection,
            self.stage_accounting,
        ]
        if self._injector is not None:
            stages.insert(3, self._injector.stage_faults)
        if self._grid is not None:
            stages.insert(
                4 if self._injector is not None else 3,
                self._grid.stage_grid,
            )
        self.pipeline = tuple(stages)

    @property
    def server_rack_index(self) -> np.ndarray:
        """Rack index of every server (server ``m`` lives in rack
        ``m // servers_per_rack``)."""
        return self._server_rack_index

    @property
    def fault_plan(self) -> "FaultPlan | None":
        """The active fault plan, if any."""
        return self._injector.plan if self._injector is not None else None

    @property
    def fault_injector(self):
        """The active :class:`~repro.faults.FaultInjector`, if any."""
        return self._injector

    @property
    def grid_plan(self) -> "GridPlan | None":
        """The active grid plan, if any."""
        return self._grid.plan if self._grid is not None else None

    @property
    def grid_injector(self):
        """The active :class:`~repro.grid.injector.GridInjector`, if any."""
        return self._grid

    @property
    def management_interval_s(self) -> float:
        """Metering/actuation cadence of the software plane."""
        return self._mgmt_interval

    def attach_attacker(self, attacker: Attacker) -> None:
        """Install (or replace) the adversary on a built simulation.

        The prefix-snapshot path depends on this: benign prefixes run
        with no attacker at all — pre-onset the attacker is a bitwise
        no-op, so omitting it changes nothing — and each forked cell
        attaches its own adversary right after :meth:`restore`.
        """
        nodes = np.asarray(attacker.nodes, dtype=int)
        if np.any(nodes >= self.cluster.servers):
            raise SimulationError("attacker nodes outside the cluster")
        self.attacker = attacker
        self._attack_nodes = nodes
        self._attack_racks = tuple(
            int(r) for r in np.unique(self._server_rack_index[nodes])
        )

    def fault_windows(self) -> "list[AttackWindow]":
        """Windows of the fault plan, as fine-step schedule refinements.

        Feed these to :func:`repro.sim.runner.build_schedule` alongside
        the attack windows so fault edges land on sub-second steps.
        One-shot faults (battery fade) have no window.
        """
        if self._injector is None:
            return []
        return [
            AttackWindow(start_s=start, end_s=end)
            for start, end in self._injector.plan.windows()
        ]

    def grid_windows(self) -> "list[AttackWindow]":
        """Windows of the grid plan, as fine-step schedule refinements.

        The runner merges these with the attack and fault windows so
        grid edges (and duty-cycle phases inside regulation windows)
        land on sub-second steps.
        """
        if self._grid is None:
            return []
        return [
            AttackWindow(start_s=start, end_s=end)
            for start, end in self._grid.plan.windows()
        ]

    def set_breaker_derate(self, derate: "np.ndarray | None") -> None:
        """Install per-breaker enforcement derating (cluster entry last).

        ``derate`` multiplies the *enforced* breaker ratings — one entry
        per breaker in bank order (racks, then mid-tier PDUs, then the
        cluster breaker), strictly positive — while ``self.rating_w``
        (overload detection, soft-limit maths) stays nominal. ``None``
        restores nominal enforcement. Takes effect at this step's
        protection stage. Called by the fault injector for
        :class:`~repro.faults.BreakerMisrating`.
        """
        if derate is not None:
            derate = np.asarray(derate, dtype=float)
            if derate.shape != (self.topology.n_breakers,):
                raise SimulationError(
                    "breaker derate needs one entry per breaker (racks, "
                    "then mid-tier PDUs, then the cluster breaker)"
                )
            if not bool(np.all(derate > 0.0)):
                raise SimulationError("breaker derate must be positive")
            derate = derate.copy()
        self._breaker_derate = derate
        self._derate_dirty = True

    def set_grid_derate(self, derate: "np.ndarray | None") -> None:
        """Install the grid-side enforcement derate (cluster entry last).

        Same contract as :meth:`set_breaker_derate`, but owned by the
        grid injector so a sag and a
        :class:`~repro.faults.BreakerMisrating` compose multiplicatively
        instead of overwriting each other. Detection (``rating_w``)
        stays nominal: the operator's "over budget" view is unchanged;
        only the physical feed the breakers enforce moves.
        """
        if derate is not None:
            derate = np.asarray(derate, dtype=float)
            if derate.shape != (self.topology.n_breakers,):
                raise SimulationError(
                    "grid derate needs one entry per breaker (racks, "
                    "then mid-tier PDUs, then the cluster breaker)"
                )
            if not bool(np.all(derate > 0.0)):
                raise SimulationError("grid derate must be positive")
            derate = derate.copy()
        self._grid_derate = derate
        self._derate_dirty = True

    # ------------------------------------------------------------------ #
    # Pipeline stages                                                     #
    # ------------------------------------------------------------------ #

    def stage_workload(self, ctx: StepContext) -> None:
        """Resolve dark racks and read the trace utilisation."""
        ctx.down = self._down_racks(ctx.time_s)
        ctx.util = self.trace.at(ctx.time_s)[: self.cluster.servers].copy()

    def stage_attack(self, ctx: StepContext) -> None:
        """Apply the attacker's utilisation overrides, if any."""
        if self.attacker is None:
            return
        assert ctx.util is not None
        observed = self._attacker_observes_capping()
        # The attacker can tell its rack went dark — its own VMs die.
        success = bool(ctx.down) and any(
            rack in ctx.down for rack in self._attack_racks
        )
        overrides = self.attacker.utilisation_overrides(
            ctx.time_s, observed, observed_success=success
        )
        for node, value in overrides.items():
            if not self.scheme.asleep_servers[node]:
                ctx.util[node] = max(ctx.util[node], value)

    def stage_demand(self, ctx: StepContext) -> None:
        """Turn utilisation into rack power and feed the meters."""
        assert ctx.util is not None
        ctx.capped_servers = self.scheme.capped_racks[self._server_rack_index]
        ctx.asleep = self.scheme.asleep_servers
        ctx.demand = self.cluster.rack_power(
            ctx.util,
            capped=ctx.capped_servers,
            asleep=ctx.asleep,
            down_racks=ctx.down,
        )
        self._update_meters(ctx.demand, ctx.util, ctx.dt)

    def stage_defense(self, ctx: StepContext) -> None:
        """Let the active scheme move energy and set management masks.

        All metered quantities flow through the scheme's
        :class:`~repro.defense.telemetry.TelemetryView`: the view holds
        last-known-good readings through dropouts and reports staleness,
        so the scheme can degrade gracefully instead of reading garbage.
        With no injector the view observes every channel every step and
        the state it yields is value-identical to the raw meters.
        """
        assert ctx.demand is not None
        view = self.scheme.telemetry
        if self._injector is None:
            view.observe(
                ctx.time_s, self._metered_rack_avg, self._metered_server_util
            )
        else:
            rack_ok, server_ok = self._injector.telemetry_masks()
            view.observe(
                ctx.time_s,
                self._injector.sensed_rack_avg(self._metered_rack_avg),
                self._metered_server_util,
                rack_mask=rack_ok,
                server_mask=server_ok,
            )
        age_s = view.age_s(ctx.time_s)
        if self._grid is None:
            ctx.state = StepState(
                time_s=ctx.time_s,
                dt=ctx.dt,
                rack_demand_w=ctx.demand,
                metered_rack_avg_w=view.rack_avg_w(),
                metered_server_util=view.server_util(),
                telemetry_age_s=age_s,
                telemetry_stale=view.is_stale(ctx.time_s),
            )
        else:
            freg_w, freg_floor = self._grid.freg_command()
            ctx.state = StepState(
                time_s=ctx.time_s,
                dt=ctx.dt,
                rack_demand_w=ctx.demand,
                metered_rack_avg_w=view.rack_avg_w(),
                metered_server_util=view.server_util(),
                telemetry_age_s=age_s,
                telemetry_stale=view.is_stale(ctx.time_s),
                grid_feed_factor=self._grid.feed_factor,
                grid_freg_w=freg_w,
                grid_freg_floor_soc=freg_floor,
            )
        ctx.dispatch = self.scheme.dispatch(ctx.state)
        ctx.utility = ctx.dispatch.utility_w(ctx.demand)
        ctx.utility[ctx.down] = 0.0

    def stage_protection(self, ctx: StepContext) -> None:
        """Move enforcement with the budgets, then integrate breakers."""
        assert ctx.dispatch is not None and ctx.utility is not None
        # The iPDU protection thresholds follow the (possibly
        # reassigned) soft limits: enforcement moves with the budget.
        # Schemes swap in a fresh array on reassignment (never mutating
        # in place), so an identity check spots unchanged limits, and
        # re-applying identical ratings would be a no-op either way.
        limits_changed = (
            ctx.dispatch.soft_limits_w is not self._applied_soft_limits_w
        )
        if limits_changed:
            self.rating_w = ctx.dispatch.soft_limits_w * (
                1.0 + self._overshoot_tolerance
            )
            self._ratings_buf[: self.cluster.racks] = self.rating_w
            self._applied_soft_limits_w = ctx.dispatch.soft_limits_w
        if limits_changed or self._derate_dirty:
            # Enforcement-only derating: the bank trips at the derated
            # threshold while rating_w (detection) and the ratings
            # buffer itself stay nominal. Fault misrating and grid feed
            # loss compose multiplicatively.
            enforced = self._ratings_buf
            if self._breaker_derate is not None:
                enforced = enforced * self._breaker_derate
            if self._grid_derate is not None:
                enforced = enforced * self._grid_derate
            self.breakers.set_ratings(enforced)
            self._derate_dirty = False
        # One segment reduction yields every mid-tier PDU load; reused by
        # overload detection and the breaker bank alike.
        pdu_utility = (
            self.topology.pdu_sums(ctx.utility) if self._n_mid else None
        )
        total_utility = self._publish_overloads(
            ctx.utility, ctx.time_s, pdu_utility
        )
        racks = self.cluster.racks
        self._loads_buf[:racks] = ctx.utility
        if pdu_utility is not None:
            self._loads_buf[racks:-1] = pdu_utility
        self._loads_buf[-1] = total_utility
        # Newly-tripped indices come back ascending, so the publication
        # order (racks first, then mid-tier, cluster last) matches the
        # scalar loop.
        topo = self.topology
        for index in self.breakers.step(self._loads_buf, ctx.dt, ctx.time_s):
            trip = self.breakers.trip_event(index)
            assert trip is not None
            self.bus.publish(
                BreakerTripped(
                    time_s=ctx.time_s,
                    rack_id=topo.breaker_label(index),
                    trip=trip,
                )
            )

    def stage_accounting(self, ctx: StepContext) -> None:
        """Integrate throughput and record the step's channels."""
        assert ctx.util is not None and ctx.dispatch is not None
        delivered, demanded = self.cluster.work_snapshot(
            ctx.util,
            capped=ctx.capped_servers,
            asleep=ctx.asleep,
            down_racks=ctx.down,
        )
        ctx.delivered_inc = delivered * ctx.dt
        ctx.demanded_inc = demanded * ctx.dt
        ctx.result.delivered_work += ctx.delivered_inc
        ctx.result.demanded_work += ctx.demanded_inc
        if ctx.record:
            self._record(ctx)

    # ------------------------------------------------------------------ #
    # Step internals                                                      #
    # ------------------------------------------------------------------ #

    def _attacker_observes_capping(self) -> bool:
        """The DVFS/shedding side-channel as seen from the attacker's VMs."""
        assert self._attack_nodes is not None
        capped_racks = self.scheme.capped_racks
        capped = any(capped_racks[r] for r in self._attack_racks)
        shed = bool(np.any(self.scheme.asleep_servers[self._attack_nodes]))
        return capped or shed

    def _update_meters(
        self, rack_demand: np.ndarray, util: np.ndarray, dt: float
    ) -> None:
        """Integrate the management meters; publish on interval boundary."""
        self._meter_energy += rack_demand * dt
        self._meter_util += util * dt
        self._meter_time += dt
        if self._meter_time >= self._mgmt_interval - 1e-9:
            self._metered_rack_avg = self._meter_energy / self._meter_time
            self._metered_server_util = self._meter_util / self._meter_time
            self._meter_energy[:] = 0.0
            self._meter_util[:] = 0.0
            self._meter_time = 0.0

    def _down_racks(self, time_s: float) -> "list[int]":
        """Racks currently dark (tripped and not yet repaired).

        A rack is dark when its own breaker is open *or* when the
        mid-tier PDU breaker feeding it is open — an open row breaker
        blacks out its whole contiguous rack block.
        """
        if not self.breakers.any_tripped:
            return []
        racks = self.cluster.racks
        tripped = self.breakers.tripped
        down = [i for i in range(racks) if tripped[i]]
        if self._repair_time_s is not None:
            still_down = []
            for i in down:
                event = self.breakers.trip_event(i)
                assert event is not None
                if time_s - event.time_s >= self._repair_time_s:
                    self.breakers.reset(i)
                else:
                    still_down.append(i)
            down = still_down
        if self._n_mid:
            dark = set(down)
            topo = self.topology
            for j in range(self._n_mid):
                index = racks + j
                if not tripped[index]:
                    continue
                if self._repair_time_s is not None:
                    event = self.breakers.trip_event(index)
                    assert event is not None
                    if time_s - event.time_s >= self._repair_time_s:
                        self.breakers.reset(index)
                        continue
                block = topo.rack_slice(j)
                dark.update(range(block.start, block.stop))
            if len(dark) != len(down):
                down = sorted(dark)
        return down

    def _publish_overloads(
        self,
        utility: np.ndarray,
        time_s: float,
        pdu_utility_w: "np.ndarray | None" = None,
    ) -> float:
        """Publish rising edges of overload; return the total utility draw.

        Publication order matches the bank layout: racks ascending, then
        mid-tier PDUs (labelled ``-(2 + j)``), then the cluster (``-1``).
        """
        racks = self.cluster.racks
        over_rack = utility > self.rating_w
        total = float(np.sum(utility))
        over_cluster = total > self._cluster_rated_w
        if over_rack.any():
            for rack in np.nonzero(over_rack & ~self._was_over[:racks])[0]:
                self.bus.publish(
                    OverloadEvent(
                        time_s=time_s,
                        rack_id=int(rack),
                        utility_w=float(utility[rack]),
                        rating_w=float(self.rating_w[rack]),
                    )
                )
        self._was_over[:racks] = over_rack
        if pdu_utility_w is not None:
            over_pdu = pdu_utility_w > self._pdu_rated_w
            if over_pdu.any():
                for j in np.nonzero(over_pdu & ~self._was_over[racks:-1])[0]:
                    self.bus.publish(
                        OverloadEvent(
                            time_s=time_s,
                            rack_id=pdu_breaker_id(int(j)),
                            utility_w=float(pdu_utility_w[j]),
                            rating_w=float(self._pdu_rated_w[j]),
                        )
                    )
            self._was_over[racks:-1] = over_pdu
        if over_cluster and not self._was_over[-1]:
            self.bus.publish(
                OverloadEvent(
                    time_s=time_s,
                    rack_id=-1,
                    utility_w=total,
                    rating_w=self._cluster_rated_w,
                )
            )
        self._was_over[-1] = over_cluster
        return total

    def ff_state(self, now_s: float) -> dict:
        """Complete evolving state for the fast-forward fingerprint.

        Everything the step pipeline reads or writes outside the
        :class:`StepContext` must appear here (directly or via a
        component's ``ff_state``): two boundaries with equal fingerprints
        must imply the intervening blocks are bitwise interchangeable.
        """
        state = {
            "scheme": self.scheme.ff_state(now_s),
            "breakers": self.breakers.ff_state(),
            "was_over": self._was_over,
            "meter_energy": self._meter_energy,
            "meter_util": self._meter_util,
            "meter_time": self._meter_time,
            "metered_rack_avg": self._metered_rack_avg,
            "metered_server_util": self._metered_server_util,
            "breaker_derate": self._breaker_derate,
            "derate_dirty": self._derate_dirty,
        }
        if self._injector is not None:
            state["injector"] = self._injector.ff_state()
        if self._grid is not None:
            state["grid"] = self._grid.ff_state()
            state["grid_derate"] = self._grid_derate
        return state

    def ff_shift_times(self, delta_s: float) -> None:
        """Advance absolute-time bookkeeping after a fast-forward jump.

        Only state that stores *wall-clock* timestamps (rather than
        durations) needs shifting; the fingerprint normalises such fields
        relative to ``now_s``, so the jump is valid exactly when shifting
        them reproduces the replayed block's end state.
        """
        self.scheme.ff_shift_times(delta_s)

    # ------------------------------------------------------------------ #
    # Running                                                             #
    # ------------------------------------------------------------------ #

    def run(
        self,
        duration_s: float,
        dt: float,
        start_s: float = 0.0,
        stop_on_trip: bool = False,
        record_every: int = 1,
    ) -> SimResult:
        """Simulate ``duration_s`` seconds at a single step ``dt``.

        Equivalent to :meth:`run_segments` with a one-segment schedule.

        Args:
            duration_s: Window length.
            dt: Step size; sub-second for attack windows, the trace
                interval for background studies.
            start_s: Window start within the trace.
            stop_on_trip: Halt at the first breaker trip (survival runs).
            record_every: Record channels every N steps (keeps month-long
                runs compact).
        """
        segment = Segment(
            start_s=start_s,
            end_s=start_s + duration_s,
            dt=dt,
            record_every=record_every,
        )
        return self.run_segments([segment], stop_on_trip=stop_on_trip)

    def run_segments(
        self,
        segments: "Sequence[Segment]",
        stop_on_trip: bool = False,
    ) -> SimResult:
        """Execute a schedule of segments, merging into one result.

        Segments must be in ascending, non-overlapping time order; all
        simulation state (battery SOC, breaker heat, meters, scheme
        state) carries across boundaries. Schedules are typically built
        by :func:`repro.sim.runner.build_schedule` / a
        :class:`~repro.sim.runner.Runner`.
        """
        schedule = self._validated_schedule(segments)
        attack_start = None
        if self.attacker is not None:
            attack_start = self.attacker.driver.config.start_s
        result = SimResult(
            scheme=self.scheme.name,
            start_s=schedule[0].start_s,
            end_s=schedule[0].start_s,
            attack_start_s=attack_start,
            recorder=self._make_recorder(),
        )
        unsubscribes = self._subscribe_result(result)
        try:
            for segment in schedule:
                self._run_segment(segment, result, stop_on_trip)
                if stop_on_trip and result.trips:
                    break
        finally:
            for unsubscribe in unsubscribes:
                unsubscribe()
        return result

    def _make_recorder(self) -> Recorder:
        """A fresh recorder honouring the configured row budget."""
        return Recorder(row_budget=self._recorder_row_budget)

    @staticmethod
    def _validated_schedule(segments: "Sequence[Segment]") -> "list[Segment]":
        schedule = list(segments)
        if not schedule:
            raise SimulationError("empty segment schedule")
        for earlier, later in zip(schedule, schedule[1:]):
            if later.start_s < earlier.end_s - 1e-6:
                raise SimulationError(
                    "segments must be in ascending, non-overlapping order"
                )
        return schedule

    def _subscribe_result(self, result: SimResult) -> "tuple":
        """Route the bus's event stream into ``result``'s collections."""
        return (
            self.bus.subscribe(SimEvent, result.events.append),
            self.bus.subscribe(OverloadEvent, result.overloads.append),
            self.bus.subscribe(
                BreakerTripped, lambda e: result.trips.append(e.trip)
            ),
            self.bus.subscribe(FaultEvent, result.faults.append),
            self.bus.subscribe(GridEvent, result.grid.append),
        )

    def _run_segment(
        self,
        segment: Segment,
        result: SimResult,
        stop_on_trip: bool,
        initial_steps: int = 0,
        limit_s: "float | None" = None,
    ) -> RunResult:
        """Run one segment's engine, accumulating into ``result``.

        Args:
            segment: The schedule entry to execute.
            result: Accumulating run result.
            stop_on_trip: Halt at the first breaker trip.
            initial_steps: Steps of this segment already executed (resume
                path); the engine's derived clock starts past them.
            limit_s: Stop at this time instead of the segment end (the
                prefix path pauses mid-segment on a step boundary).
        """
        engine = Engine(
            dt=segment.dt,
            start_s=segment.start_s,
            bus=self.bus,
            initial_steps=initial_steps,
        )
        step_index = initial_steps
        ff = None
        if self.fast_forward:
            ff = SegmentFastForward(self, segment, result, limit_s=limit_s)
            if not ff.enabled:
                ff = None

        def step(time_s: float, dt: float) -> None:
            nonlocal step_index
            if ff is not None:
                skipped = ff.begin_step(step_index, time_s)
                if skipped:
                    # The replay already landed every recorder row and
                    # work addend; the engine's own post-hook increment
                    # supplies the final +1.
                    engine.advance_steps(skipped - 1)
                    step_index += skipped
                    return
            ctx = StepContext(
                time_s=time_s,
                dt=dt,
                result=result,
                record=step_index % segment.record_every == 0,
            )
            for stage in self.pipeline:
                stage(ctx)
            if ff is not None:
                ff.observe(ctx)
            step_index += 1

        engine.add_hook(step)
        if stop_on_trip:
            engine.add_stop(lambda _t: bool(result.trips))
        run = engine.run_until(
            segment.end_s if limit_s is None else limit_s
        )
        result.end_s = run.end_s
        return run

    # ------------------------------------------------------------------ #
    # Prefix / snapshot / resume                                          #
    # ------------------------------------------------------------------ #

    def run_prefix(
        self,
        segments: "Sequence[Segment]",
        pause_at_s: float,
        stop_on_trip: bool = False,
    ) -> SimResult:
        """Run a schedule up to ``pause_at_s``, then pause resumably.

        The pause point must land on a step boundary of the segment it
        falls in. After this returns, :meth:`snapshot` captures the whole
        simulation (including the pause cursor and partial result) and
        :meth:`resume_segments` — on this object or a :meth:`restore`\\ d
        copy — finishes the schedule bit-identically to an unbroken
        :meth:`run_segments` call.
        """
        if self._paused is not None:
            raise SimulationError("a paused run is already pending")
        schedule = self._validated_schedule(segments)
        attack_start = None
        if self.attacker is not None:
            attack_start = self.attacker.driver.config.start_s
        result = SimResult(
            scheme=self.scheme.name,
            start_s=schedule[0].start_s,
            end_s=schedule[0].start_s,
            attack_start_s=attack_start,
            recorder=self._make_recorder(),
        )
        paused_index = len(schedule)
        paused_steps = 0
        unsubscribes = self._subscribe_result(result)
        try:
            for index, segment in enumerate(schedule):
                if pause_at_s <= segment.start_s + 1e-9:
                    paused_index, paused_steps = index, 0
                    break
                if pause_at_s < segment.end_s - 1e-9:
                    steps = round(
                        (pause_at_s - segment.start_s) / segment.dt
                    )
                    boundary = segment.start_s + steps * segment.dt
                    if abs(boundary - pause_at_s) > 1e-6:
                        raise SimulationError(
                            "pause_at_s must land on a step boundary of "
                            "its segment"
                        )
                    if steps > 0:
                        self._run_segment(
                            segment, result, stop_on_trip, limit_s=boundary
                        )
                    paused_index, paused_steps = index, steps
                    break
                self._run_segment(segment, result, stop_on_trip)
                if stop_on_trip and result.trips:
                    paused_index, paused_steps = index + 1, 0
                    break
        finally:
            for unsubscribe in unsubscribes:
                unsubscribe()
        self._paused = _PausedRun(
            schedule=tuple(schedule),
            segment_index=paused_index,
            steps_done=paused_steps,
            result=result,
        )
        return result

    def snapshot(self) -> SimSnapshot:
        """Checkpoint the entire simulation as portable bytes.

        Captures physics, control state, meters, RNG streams and — when a
        :meth:`run_prefix` is pending — the pause cursor and its partial
        result, so a restored copy resumes exactly where this one paused.
        The event bus must hold no external subscribers (run methods
        unsubscribe their collectors before returning, so any schedule
        boundary is safe).
        """
        return SimSnapshot(
            version=SNAPSHOT_VERSION, payload=pickle.dumps(self)
        )

    @staticmethod
    def restore(snapshot: SimSnapshot) -> "DataCenterSimulation":
        """Rebuild an independent simulation from :meth:`snapshot` bytes."""
        if snapshot.version != SNAPSHOT_VERSION:
            raise SimulationError(
                f"snapshot version {snapshot.version} unsupported "
                f"(expected {SNAPSHOT_VERSION})"
            )
        sim = pickle.loads(snapshot.payload)
        if not isinstance(sim, DataCenterSimulation):
            raise SimulationError("snapshot payload is not a simulation")
        return sim

    def resume_segments(self, stop_on_trip: bool = False) -> SimResult:
        """Finish the schedule paused by :meth:`run_prefix`.

        Continues from the stored cursor — mid-segment when the pause
        fell inside one — and returns the same accumulating result, now
        complete. An attacker attached after the pause (the snapshot-fork
        path) back-fills ``attack_start_s``.
        """
        if self._paused is None:
            raise SimulationError("no paused run to resume")
        paused, self._paused = self._paused, None
        result = paused.result
        if self.attacker is not None and result.attack_start_s is None:
            result.attack_start_s = self.attacker.driver.config.start_s
        unsubscribes = self._subscribe_result(result)
        try:
            for index in range(paused.segment_index, len(paused.schedule)):
                segment = paused.schedule[index]
                initial = (
                    paused.steps_done
                    if index == paused.segment_index
                    else 0
                )
                if (
                    segment.start_s + initial * segment.dt
                    >= segment.end_s - 1e-9
                ):
                    continue
                self._run_segment(
                    segment, result, stop_on_trip, initial_steps=initial
                )
                if stop_on_trip and result.trips:
                    break
        finally:
            for unsubscribe in unsubscribes:
                unsubscribe()
        return result

    def _record(self, ctx: StepContext) -> None:
        assert ctx.demand is not None and ctx.utility is not None
        assert ctx.dispatch is not None
        rec = ctx.result.recorder
        scalars = dict(
            time_s=ctx.time_s,
            total_demand_w=float(np.sum(ctx.demand)),
            total_utility_w=float(np.sum(ctx.utility)),
            battery_w=float(np.sum(ctx.dispatch.battery_w)),
            udeb_w=float(np.sum(ctx.dispatch.udeb_w)),
            fleet_soc_mean=float(np.mean(self.scheme.fleet.soc_vector())),
            fleet_soc_std=self.scheme.fleet.soc_std(),
            capped_racks=float(np.sum(ctx.dispatch.capped_racks)),
            asleep_servers=float(np.sum(ctx.dispatch.asleep_servers)),
        )
        rec.append_row(**scalars)
        soc = self.scheme.fleet.soc_vector()
        if self._record_pdu_aggregates:
            # Streaming per-PDU aggregation: the recorder holds one lane
            # per PDU instead of one per rack, so warehouse-scale runs
            # stay narrow no matter how many racks each PDU feeds.
            topo = self.topology
            pdu_soc = topo.pdu_sums(np.asarray(soc, dtype=float))
            pdu_soc /= topo.pdu_rack_counts
            pdu_utility = topo.pdu_sums(ctx.utility)
            rec.append_vector("pdu_soc", pdu_soc, copy=False)
            rec.append_vector("pdu_utility_w", pdu_utility, copy=False)
            ctx.row_scalars = scalars
            ctx.row_vectors = {
                "pdu_soc": pdu_soc,
                "pdu_utility_w": pdu_utility,
            }
            return
        rec.append_vector("rack_soc", soc)
        # ``ctx.utility`` is a fresh float64 array built this step and
        # never reused after recording, so the documented copy=False path
        # skips the redundant re-coercion.
        rec.append_vector("rack_utility_w", ctx.utility, copy=False)
        # Exposed so the fast-forward capture can reuse the exact values
        # just recorded instead of recomputing them.
        ctx.row_scalars = scalars
        ctx.row_vectors = {"rack_soc": soc, "rack_utility_w": ctx.utility}


def truncate_snapshot_schedule(
    snapshot: SimSnapshot, end_s: float
) -> SimSnapshot:
    """A copy of a paused snapshot whose remaining schedule ends at ``end_s``.

    The adversarial search evaluates candidates in escalating probe
    windows; each window is a *prefix* of the full survival schedule, so
    one shared benign-prefix snapshot can serve every window by clipping
    the paused schedule instead of re-simulating the prefix. Steps are
    anchored at each segment's start, so a clipped segment executes
    exactly the same step sequence as the full one up to ``end_s`` —
    forked runs stay bit-identical to a straight run over the shorter
    schedule.

    Args:
        snapshot: A snapshot taken after
            :meth:`DataCenterSimulation.run_prefix` paused.
        end_s: New schedule end. Must land on a step boundary of the
            segment it falls in and lie strictly after the pause point.

    Raises:
        SimulationError: when the snapshot holds no paused run, ``end_s``
            precedes the pause point, or ``end_s`` misses the step grid.
    """
    sim = DataCenterSimulation.restore(snapshot)
    paused = sim._paused
    if paused is None:
        raise SimulationError(
            "snapshot holds no paused run to truncate"
        )
    if paused.segment_index >= len(paused.schedule):
        raise SimulationError("paused run has no remaining schedule")
    cursor = paused.schedule[paused.segment_index]
    pause_s = cursor.start_s + paused.steps_done * cursor.dt
    if end_s <= pause_s + 1e-9:
        raise SimulationError(
            f"truncation end {end_s} not after pause point {pause_s}"
        )
    clipped: "list[Segment]" = []
    for segment in paused.schedule:
        if segment.start_s >= end_s - 1e-9:
            break
        if segment.end_s <= end_s + 1e-9:
            clipped.append(segment)
            continue
        steps = round((end_s - segment.start_s) / segment.dt)
        boundary = segment.start_s + steps * segment.dt
        if abs(boundary - end_s) > 1e-6 or steps < 1:
            raise SimulationError(
                "truncation end must land on a step boundary of its "
                "segment"
            )
        clipped.append(
            Segment(
                start_s=segment.start_s,
                end_s=boundary,
                dt=segment.dt,
                record_every=segment.record_every,
            )
        )
        break
    sim._paused = _PausedRun(
        schedule=tuple(clipped),
        segment_index=paused.segment_index,
        steps_done=paused.steps_done,
        result=paused.result,
    )
    return sim.snapshot()
