"""The trace-driven data-center simulation (paper Fig. 11-B).

Wires every substrate together: the workload trace drives per-machine
utilisation; the attacker overrides its captured nodes; the cluster model
turns utilisation into rack power; the active defense scheme moves battery
and supercap energy; breakers integrate the resulting utility draw; and
the metrics layer records overloads, trips, throughput and SOC maps.

Timing follows the paper's two-scale structure: month-long background runs
step at the trace interval, attack windows step at sub-second resolution.
The simulation is agnostic — pick ``dt`` per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..attack.attacker import Attacker
from ..config import DataCenterConfig
from ..errors import SimulationError
from ..power.breaker import CircuitBreaker, TripEvent
from ..workload.cluster import ClusterModel
from ..workload.trace import UtilizationTrace
from ..defense.base import DefenseScheme, Dispatch, SchemeContext, StepState
from .engine import Engine
from .recorder import Recorder


@dataclass(frozen=True)
class OverloadEvent:
    """An effective attack: a rack feed exceeded its rating.

    Attributes:
        time_s: When the rack's utility draw first crossed the rating.
        rack_id: The overloaded rack (``-1`` for the cluster feed).
        utility_w: The offending draw.
        rating_w: The rating it crossed.
    """

    time_s: float
    rack_id: int
    utility_w: float
    rating_w: float


@dataclass
class SimResult:
    """Everything a run produced.

    Attributes:
        scheme: Name of the defense scheme evaluated.
        start_s: Run start time.
        end_s: Run end time (early if stopped on a trip).
        attack_start_s: When the attacker engaged, if any.
        overloads: Effective-attack events, in time order.
        trips: Breaker trips, in time order.
        delivered_work: Integrated delivered throughput (machine-seconds).
        demanded_work: Integrated demanded throughput (machine-seconds).
        recorder: Step-aligned time series.
    """

    scheme: str
    start_s: float
    end_s: float
    attack_start_s: "float | None"
    overloads: "list[OverloadEvent]" = field(default_factory=list)
    trips: "list[TripEvent]" = field(default_factory=list)
    delivered_work: float = 0.0
    demanded_work: float = 0.0
    recorder: Recorder = field(default_factory=Recorder)

    @property
    def survival_time_s(self) -> "float | None":
        """Attack start to first breaker trip; ``None`` when censored.

        This is the paper's headline metric ("from the beginning of the
        attack to the time the first overload happens"). A run that ends
        with no trip survived the whole window — report the censored
        value via :meth:`survival_or_window`.
        """
        if self.attack_start_s is None or not self.trips:
            return None
        return self.trips[0].time_s - self.attack_start_s

    def survival_or_window(self) -> float:
        """Survival time, or the full attack window when censored."""
        survival = self.survival_time_s
        if survival is not None:
            return survival
        start = self.attack_start_s if self.attack_start_s is not None else self.start_s
        return self.end_s - start

    @property
    def first_overload_s(self) -> "float | None":
        """Time of the first effective attack, if any."""
        return self.overloads[0].time_s if self.overloads else None

    @property
    def throughput_ratio(self) -> float:
        """Delivered over demanded work across the run (Fig. 16 metric)."""
        if self.demanded_work <= 0.0:
            return 1.0
        return self.delivered_work / self.demanded_work


class DataCenterSimulation:
    """One configured data center + workload + (optional) attacker.

    Args:
        config: Data-center configuration.
        trace: Machine-utilisation workload; must cover the run window and
            have at least as many machines as the cluster has servers.
        scheme_factory: Class (or callable) building the defense scheme
            from a :class:`SchemeContext` — e.g. an entry of
            :data:`repro.defense.SCHEMES`.
        attacker: Optional adversary whose nodes override the trace.
        overshoot_tolerance: Breaker-rating margin over the budget — the
            "x % overshoot the data center can tolerate" of paper Fig. 8.
        management_interval_s: Metering/actuation cadence of the software
            plane (capping, shedding, VP detection).
        repair_time_s: Re-arm a tripped breaker after this long; ``None``
            leaves it open (survival-style runs).
        initial_battery_soc: Starting SOC for the rack batteries.
    """

    def __init__(
        self,
        config: DataCenterConfig,
        trace: UtilizationTrace,
        scheme_factory: "type[DefenseScheme]",
        attacker: "Attacker | None" = None,
        overshoot_tolerance: float = 0.03,
        management_interval_s: float = 10.0,
        repair_time_s: "float | None" = None,
        initial_battery_soc: "float | list[float]" = 1.0,
    ) -> None:
        if overshoot_tolerance < 0.0:
            raise SimulationError("overshoot tolerance must be non-negative")
        if management_interval_s <= 0.0:
            raise SimulationError("management interval must be positive")
        self.config = config
        self._overshoot_tolerance = overshoot_tolerance
        self.cluster = ClusterModel(config.cluster)
        if trace.machines < self.cluster.servers:
            raise SimulationError(
                f"trace has {trace.machines} machines; cluster needs "
                f"{self.cluster.servers}"
            )
        self.trace = trace
        self.attacker = attacker
        racks = self.cluster.racks
        budget_w = config.cluster.pdu_budget_w
        self.soft_limits_w = np.full(racks, budget_w / racks)
        self.rating_w = self.soft_limits_w * (1.0 + overshoot_tolerance)
        shape = config.cluster.rack.breaker
        self.rack_breakers = [
            CircuitBreaker(shape.with_rating(float(r))) for r in self.rating_w
        ]
        self.cluster_breaker = CircuitBreaker(
            shape.with_rating(budget_w * (1.0 + overshoot_tolerance))
        )
        self.scheme: DefenseScheme = scheme_factory(
            SchemeContext(
                config=config,
                cluster=self.cluster,
                initial_soft_limits_w=self.soft_limits_w,
                branch_rating_w=self.rating_w,
                seed=config.seed,
                initial_battery_soc=initial_battery_soc,
            )
        )
        self._mgmt_interval = management_interval_s
        self._repair_time_s = repair_time_s
        # Management-meter accumulators (energy / utilisation integrals).
        self._meter_energy = np.zeros(racks)
        self._meter_util = np.zeros(self.cluster.servers)
        self._meter_time = 0.0
        # Sane priors until the first interval completes: the meters
        # report the provisioned budgets, not zero (which would make the
        # software plane slam every limit to the floor at t=0).
        self._metered_rack_avg = self.soft_limits_w.copy()
        self._metered_server_util = np.zeros(self.cluster.servers)
        self._rack_down_until = np.full(racks, -np.inf)
        self._was_over = np.zeros(racks + 1, dtype=bool)
        self._attack_nodes = (
            np.asarray(attacker.nodes, dtype=int) if attacker else None
        )
        if self._attack_nodes is not None and np.any(
            self._attack_nodes >= self.cluster.servers
        ):
            raise SimulationError("attacker nodes outside the cluster")

    # ------------------------------------------------------------------ #
    # Step internals                                                      #
    # ------------------------------------------------------------------ #

    def _utilisation(self, time_s: float, down: "list[int]") -> np.ndarray:
        """Trace utilisation with attacker overrides applied."""
        util = self.trace.at(time_s)[: self.cluster.servers].copy()
        if self.attacker is not None:
            observed = self._attacker_observes_capping()
            # The attacker can tell its rack went dark — its own VMs die.
            success = any(
                self.cluster.rack_of(int(n)) in down
                for n in self._attack_nodes  # type: ignore[union-attr]
            )
            overrides = self.attacker.utilisation_overrides(
                time_s, observed, observed_success=success
            )
            for node, value in overrides.items():
                if not self.scheme.asleep_servers[node]:
                    util[node] = max(util[node], value)
        return util

    def _attacker_observes_capping(self) -> bool:
        """The DVFS/shedding side-channel as seen from the attacker's VMs."""
        assert self._attack_nodes is not None
        racks = {self.cluster.rack_of(int(n)) for n in self._attack_nodes}
        capped = any(self.scheme.capped_racks[r] for r in racks)
        shed = bool(np.any(self.scheme.asleep_servers[self._attack_nodes]))
        return capped or shed

    def _update_meters(
        self, rack_demand: np.ndarray, util: np.ndarray, dt: float
    ) -> None:
        """Integrate the management meters; publish on interval boundary."""
        self._meter_energy += rack_demand * dt
        self._meter_util += util * dt
        self._meter_time += dt
        if self._meter_time >= self._mgmt_interval - 1e-9:
            self._metered_rack_avg = self._meter_energy / self._meter_time
            self._metered_server_util = self._meter_util / self._meter_time
            self._meter_energy[:] = 0.0
            self._meter_util[:] = 0.0
            self._meter_time = 0.0

    def _down_racks(self, time_s: float) -> "list[int]":
        """Racks currently dark (tripped and not yet repaired)."""
        down = [i for i, b in enumerate(self.rack_breakers) if b.is_tripped]
        if self._repair_time_s is not None:
            still_down = []
            for i in down:
                event = self.rack_breakers[i].trip_event
                assert event is not None
                if time_s - event.time_s >= self._repair_time_s:
                    self.rack_breakers[i].reset()
                else:
                    still_down.append(i)
            down = still_down
        return down

    def _record_overloads(
        self, result: SimResult, utility: np.ndarray, time_s: float
    ) -> None:
        """Count rising edges of utility power above the ratings."""
        over_rack = utility > self.rating_w
        total = float(np.sum(utility))
        over_cluster = total > self.cluster_breaker.rated_w
        for rack in np.nonzero(over_rack & ~self._was_over[:-1])[0]:
            result.overloads.append(
                OverloadEvent(
                    time_s=time_s,
                    rack_id=int(rack),
                    utility_w=float(utility[rack]),
                    rating_w=float(self.rating_w[rack]),
                )
            )
        if over_cluster and not self._was_over[-1]:
            result.overloads.append(
                OverloadEvent(
                    time_s=time_s,
                    rack_id=-1,
                    utility_w=total,
                    rating_w=self.cluster_breaker.rated_w,
                )
            )
        self._was_over[:-1] = over_rack
        self._was_over[-1] = over_cluster

    # ------------------------------------------------------------------ #
    # Running                                                             #
    # ------------------------------------------------------------------ #

    def run(
        self,
        duration_s: float,
        dt: float,
        start_s: float = 0.0,
        stop_on_trip: bool = False,
        record_every: int = 1,
    ) -> SimResult:
        """Simulate ``duration_s`` seconds at step ``dt``.

        Args:
            duration_s: Window length.
            dt: Step size; sub-second for attack windows, the trace
                interval for background studies.
            start_s: Window start within the trace.
            stop_on_trip: Halt at the first breaker trip (survival runs).
            record_every: Record channels every N steps (keeps month-long
                runs compact).
        """
        attack_start = None
        if self.attacker is not None:
            attack_start = self.attacker.driver.config.start_s
        result = SimResult(
            scheme=self.scheme.name,
            start_s=start_s,
            end_s=start_s,
            attack_start_s=attack_start,
        )
        engine = Engine(dt=dt, start_s=start_s)
        step_index = [0]

        def step(time_s: float, step_dt: float) -> None:
            down = self._down_racks(time_s)
            util = self._utilisation(time_s, down)
            capped_servers = self.scheme.capped_racks[
                np.arange(self.cluster.servers) // self.config.cluster.rack.servers
            ]
            asleep = self.scheme.asleep_servers
            demand = self.cluster.rack_power(
                util, capped=capped_servers, asleep=asleep, down_racks=down
            )
            self._update_meters(demand, util, step_dt)
            state = StepState(
                time_s=time_s,
                dt=step_dt,
                rack_demand_w=demand,
                metered_rack_avg_w=self._metered_rack_avg.copy(),
                metered_server_util=self._metered_server_util.copy(),
            )
            dispatch = self.scheme.dispatch(state)
            utility = dispatch.utility_w(demand)
            utility[down] = 0.0
            # The iPDU protection thresholds follow the (possibly
            # reassigned) soft limits: enforcement moves with the budget.
            self.rating_w = dispatch.soft_limits_w * (
                1.0 + self._overshoot_tolerance
            )
            for rack, breaker in enumerate(self.rack_breakers):
                breaker.set_rating(float(self.rating_w[rack]))
            self._record_overloads(result, utility, time_s)
            for rack, breaker in enumerate(self.rack_breakers):
                if breaker.step(float(utility[rack]), step_dt, time_s):
                    assert breaker.trip_event is not None
                    result.trips.append(breaker.trip_event)
            if self.cluster_breaker.step(float(np.sum(utility)), step_dt, time_s):
                assert self.cluster_breaker.trip_event is not None
                result.trips.append(self.cluster_breaker.trip_event)
            delivered = self.cluster.throughput(
                util, capped=capped_servers, asleep=asleep, down_racks=down
            )
            demanded = self.cluster.demanded_throughput(util)
            result.delivered_work += delivered * step_dt
            result.demanded_work += demanded * step_dt
            if step_index[0] % record_every == 0:
                self._record(result, time_s, demand, utility, dispatch)
            step_index[0] += 1

        engine.add_hook(step)
        if stop_on_trip:
            engine.add_stop(lambda _t: bool(result.trips))
        run = engine.run_until(start_s + duration_s)
        result.end_s = run.end_s
        return result

    def _record(
        self,
        result: SimResult,
        time_s: float,
        demand: np.ndarray,
        utility: np.ndarray,
        dispatch: Dispatch,
    ) -> None:
        rec = result.recorder
        rec.append_row(
            time_s=time_s,
            total_demand_w=float(np.sum(demand)),
            total_utility_w=float(np.sum(utility)),
            battery_w=float(np.sum(dispatch.battery_w)),
            udeb_w=float(np.sum(dispatch.udeb_w)),
            fleet_soc_mean=float(np.mean(self.scheme.fleet.soc_vector())),
            fleet_soc_std=self.scheme.fleet.soc_std(),
            capped_racks=float(np.sum(dispatch.capped_racks)),
            asleep_servers=float(np.sum(dispatch.asleep_servers)),
        )
        rec.append_vector("rack_soc", self.scheme.fleet.soc_vector())
        rec.append_vector("rack_utility_w", utility)
