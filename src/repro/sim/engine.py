"""Discrete-time simulation engine.

A deliberately small fixed-step engine: the interesting orchestration
lives in :mod:`repro.sim.datacenter`; this module owns the clock, the hook
registry and the stop conditions, so every experiment advances time the
same way and step hooks (recorders, probes, fault injectors) compose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError

#: A step hook: called as ``hook(time_s, dt)`` after each step.
StepHook = Callable[[float, float], None]
#: A stop predicate: called as ``predicate(time_s)``; True halts the run.
StopPredicate = Callable[[float], bool]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one engine run.

    Attributes:
        start_s: Time at the first step.
        end_s: Time after the last executed step.
        steps: Number of steps executed.
        stopped_early: True if a stop predicate halted the run before the
            requested end time.
    """

    start_s: float
    end_s: float
    steps: int
    stopped_early: bool


class Engine:
    """Fixed-step clock with hooks and stop predicates.

    Args:
        dt: Step length in seconds.
        start_s: Initial clock value.
    """

    def __init__(self, dt: float, start_s: float = 0.0) -> None:
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self._dt = dt
        self._now = start_s
        self._hooks: list[StepHook] = []
        self._stops: list[StopPredicate] = []
        self._running = False

    @property
    def dt(self) -> float:
        """Step length in seconds."""
        return self._dt

    @property
    def now_s(self) -> float:
        """Current simulation time."""
        return self._now

    def add_hook(self, hook: StepHook) -> None:
        """Register a per-step hook (runs after the step, in order added).

        Raises:
            SimulationError: if called while a run is in progress.
        """
        if self._running:
            raise SimulationError("cannot register hooks during a run")
        self._hooks.append(hook)

    def add_stop(self, predicate: StopPredicate) -> None:
        """Register a stop predicate, checked after every step."""
        if self._running:
            raise SimulationError("cannot register stops during a run")
        self._stops.append(predicate)

    def step(self) -> None:
        """Advance one step, firing hooks."""
        end = self._now + self._dt
        for hook in self._hooks:
            hook(self._now, self._dt)
        self._now = end

    def run_until(self, end_s: float) -> RunResult:
        """Run steps until ``end_s`` or a stop predicate fires.

        The final step is never shortened: the run covers
        ``ceil((end - now) / dt)`` whole steps, so callers that need exact
        alignment should pick ``dt`` dividing the duration.
        """
        if end_s <= self._now:
            raise SimulationError(
                f"end time {end_s} not after current time {self._now}"
            )
        start = self._now
        steps = 0
        stopped = False
        self._running = True
        try:
            while self._now < end_s - 1e-9:
                self.step()
                steps += 1
                if any(stop(self._now) for stop in self._stops):
                    stopped = True
                    break
        finally:
            self._running = False
        return RunResult(
            start_s=start, end_s=self._now, steps=steps, stopped_early=stopped
        )
