"""Discrete-time simulation engine.

A deliberately small fixed-step engine: the interesting orchestration
lives in :mod:`repro.sim.datacenter`; this module owns the clock, the hook
registry, the stop conditions and the event bus, so every experiment
advances time the same way and step hooks (recorders, probes, fault
injectors) compose.

The clock is derived, not accumulated: ``now = start + steps * dt``.
Repeated float addition would drift by whole steps over a month-long run
(~5.2M steps at ``dt=0.5``); the derived form keeps every boundary exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError
from .events import EventBus

#: A step hook: called as ``hook(time_s, dt)`` after each step.
StepHook = Callable[[float, float], None]
#: A stop predicate: called as ``predicate(time_s)``; True halts the run.
StopPredicate = Callable[[float], bool]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one engine run.

    Attributes:
        start_s: Time at the first step.
        end_s: Time after the last executed step.
        steps: Number of steps executed.
        stopped_early: True if a stop predicate halted the run before the
            requested end time.
    """

    start_s: float
    end_s: float
    steps: int
    stopped_early: bool


class Engine:
    """Fixed-step clock with hooks, stop predicates and an event bus.

    Args:
        dt: Step length in seconds.
        start_s: Initial clock value.
        bus: Event bus shared with the orchestration layer; a fresh
            recording bus is created when omitted.
        initial_steps: Steps already counted against ``start_s`` — the
            clock starts at ``start_s + initial_steps * dt``. Used when a
            restored snapshot resumes partway through a segment: keeping
            the original anchor means every remaining step lands on the
            exact same derived time as an unbroken run.
    """

    def __init__(
        self,
        dt: float,
        start_s: float = 0.0,
        bus: "EventBus | None" = None,
        initial_steps: int = 0,
    ) -> None:
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        if initial_steps < 0:
            raise SimulationError("initial_steps must be non-negative")
        self._dt = dt
        self._start_s = start_s
        self._steps_done = initial_steps
        self._bus = bus if bus is not None else EventBus()
        self._hooks: list[StepHook] = []
        self._stops: list[StopPredicate] = []
        self._running = False

    @property
    def dt(self) -> float:
        """Step length in seconds."""
        return self._dt

    @property
    def now_s(self) -> float:
        """Current simulation time, derived as ``start + steps * dt``."""
        return self._start_s + self._steps_done * self._dt

    @property
    def bus(self) -> EventBus:
        """The engine-level event bus."""
        return self._bus

    def add_hook(self, hook: StepHook) -> None:
        """Register a per-step hook (runs after the step, in order added).

        Raises:
            SimulationError: if called while a run is in progress.
        """
        if self._running:
            raise SimulationError("cannot register hooks during a run")
        self._hooks.append(hook)

    def add_stop(self, predicate: StopPredicate) -> None:
        """Register a stop predicate, checked after every step."""
        if self._running:
            raise SimulationError("cannot register stops during a run")
        self._stops.append(predicate)

    def step(self) -> None:
        """Advance one step, firing hooks."""
        now = self.now_s
        for hook in self._hooks:
            hook(now, self._dt)
        self._steps_done += 1

    def advance_steps(self, steps: int) -> None:
        """Jump the clock forward by ``steps`` without firing hooks.

        The fast-forward path calls this from inside a hook after it has
        replayed the skipped steps' effects itself; the derived clock
        keeps every later step boundary exact.
        """
        if steps < 0:
            raise SimulationError("cannot advance by a negative step count")
        self._steps_done += steps

    def run_until(self, end_s: float) -> RunResult:
        """Run steps until ``end_s`` or a stop predicate fires.

        The final step is never shortened: the run covers
        ``ceil((end - now) / dt)`` whole steps, so callers that need exact
        alignment should pick ``dt`` dividing the duration.

        ``RunResult.steps`` counts steps of simulated time, including any
        fast-forwarded via :meth:`advance_steps`.
        """
        if end_s <= self.now_s:
            raise SimulationError(
                f"end time {end_s} not after current time {self.now_s}"
            )
        start = self.now_s
        begin_steps = self._steps_done
        stopped = False
        self._running = True
        try:
            while self.now_s < end_s - 1e-9:
                self.step()
                if any(stop(self.now_s) for stop in self._stops):
                    stopped = True
                    break
        finally:
            self._running = False
        return RunResult(
            start_s=start,
            end_s=self.now_s,
            steps=self._steps_done - begin_steps,
            stopped_early=stopped,
        )
