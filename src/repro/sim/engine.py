"""Discrete-time simulation engine.

A deliberately small fixed-step engine: the interesting orchestration
lives in :mod:`repro.sim.datacenter`; this module owns the clock, the hook
registry, the stop conditions and the event bus, so every experiment
advances time the same way and step hooks (recorders, probes, fault
injectors) compose.

The clock is derived, not accumulated: ``now = start + steps * dt``.
Repeated float addition would drift by whole steps over a month-long run
(~5.2M steps at ``dt=0.5``); the derived form keeps every boundary exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import SimulationError
from .events import EventBus

#: A step hook: called as ``hook(time_s, dt)`` after each step.
StepHook = Callable[[float, float], None]
#: A stop predicate: called as ``predicate(time_s)``; True halts the run.
StopPredicate = Callable[[float], bool]


@dataclass(frozen=True)
class RunResult:
    """Outcome of one engine run.

    Attributes:
        start_s: Time at the first step.
        end_s: Time after the last executed step.
        steps: Number of steps executed.
        stopped_early: True if a stop predicate halted the run before the
            requested end time.
    """

    start_s: float
    end_s: float
    steps: int
    stopped_early: bool


class Engine:
    """Fixed-step clock with hooks, stop predicates and an event bus.

    Args:
        dt: Step length in seconds.
        start_s: Initial clock value.
        bus: Event bus shared with the orchestration layer; a fresh
            recording bus is created when omitted.
    """

    def __init__(
        self, dt: float, start_s: float = 0.0, bus: "EventBus | None" = None
    ) -> None:
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        self._dt = dt
        self._start_s = start_s
        self._steps_done = 0
        self._bus = bus if bus is not None else EventBus()
        self._hooks: list[StepHook] = []
        self._stops: list[StopPredicate] = []
        self._running = False

    @property
    def dt(self) -> float:
        """Step length in seconds."""
        return self._dt

    @property
    def now_s(self) -> float:
        """Current simulation time, derived as ``start + steps * dt``."""
        return self._start_s + self._steps_done * self._dt

    @property
    def bus(self) -> EventBus:
        """The engine-level event bus."""
        return self._bus

    def add_hook(self, hook: StepHook) -> None:
        """Register a per-step hook (runs after the step, in order added).

        Raises:
            SimulationError: if called while a run is in progress.
        """
        if self._running:
            raise SimulationError("cannot register hooks during a run")
        self._hooks.append(hook)

    def add_stop(self, predicate: StopPredicate) -> None:
        """Register a stop predicate, checked after every step."""
        if self._running:
            raise SimulationError("cannot register stops during a run")
        self._stops.append(predicate)

    def step(self) -> None:
        """Advance one step, firing hooks."""
        now = self.now_s
        for hook in self._hooks:
            hook(now, self._dt)
        self._steps_done += 1

    def run_until(self, end_s: float) -> RunResult:
        """Run steps until ``end_s`` or a stop predicate fires.

        The final step is never shortened: the run covers
        ``ceil((end - now) / dt)`` whole steps, so callers that need exact
        alignment should pick ``dt`` dividing the duration.
        """
        if end_s <= self.now_s:
            raise SimulationError(
                f"end time {end_s} not after current time {self.now_s}"
            )
        start = self.now_s
        steps = 0
        stopped = False
        self._running = True
        try:
            while self.now_s < end_s - 1e-9:
                self.step()
                steps += 1
                if any(stop(self.now_s) for stop in self._stops):
                    stopped = True
                    break
        finally:
            self._running = False
        return RunResult(
            start_s=start, end_s=self.now_s, steps=steps, stopped_early=stopped
        )
