"""Simulation engine, data-center orchestration, metrics, and costs."""

from .costs import (
    CostBreakdown,
    battery_cost,
    cluster_cost,
    supercap_cost,
    udeb_capacity_for_ratio,
)
from .datacenter import DataCenterSimulation, OverloadEvent, SimResult
from .engine import Engine, RunResult
from .metrics import (
    count_effective_attacks,
    improvement_over,
    overloads_in,
    rising_edges_above,
    soc_map,
    soc_std_series,
    survival_summary,
    vulnerable_rack_fraction,
)
from .recorder import Recorder

__all__ = [
    "CostBreakdown",
    "DataCenterSimulation",
    "Engine",
    "OverloadEvent",
    "Recorder",
    "RunResult",
    "SimResult",
    "battery_cost",
    "cluster_cost",
    "count_effective_attacks",
    "improvement_over",
    "overloads_in",
    "rising_edges_above",
    "soc_map",
    "soc_std_series",
    "supercap_cost",
    "survival_summary",
    "udeb_capacity_for_ratio",
    "vulnerable_rack_fraction",
]
