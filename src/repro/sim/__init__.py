"""Simulation engine, data-center orchestration, metrics, and costs."""

from .costs import (
    CostBreakdown,
    battery_cost,
    cluster_cost,
    supercap_cost,
    udeb_capacity_for_ratio,
)
from .datacenter import DataCenterSimulation, OverloadEvent, SimResult, StepContext
from .engine import Engine, RunResult
from .events import (
    BreakerTripped,
    CappingChanged,
    EventBus,
    PolicyEscalation,
    SheddingAction,
    SimEvent,
    SoftLimitsReassigned,
    events_between,
)
from .runner import (
    ATTACK_DT_S,
    AttackWindow,
    Runner,
    Segment,
    build_schedule,
)
from .metrics import (
    count_effective_attacks,
    event_counts,
    improvement_over,
    overloads_in,
    rising_edges_above,
    soc_map,
    soc_std_series,
    survival_summary,
    survival_time_after,
    vulnerable_rack_fraction,
)
from .recorder import Recorder

__all__ = [
    "ATTACK_DT_S",
    "AttackWindow",
    "BreakerTripped",
    "CappingChanged",
    "CostBreakdown",
    "DataCenterSimulation",
    "Engine",
    "EventBus",
    "OverloadEvent",
    "PolicyEscalation",
    "Recorder",
    "RunResult",
    "Runner",
    "Segment",
    "SheddingAction",
    "SimEvent",
    "SimResult",
    "SoftLimitsReassigned",
    "StepContext",
    "battery_cost",
    "build_schedule",
    "cluster_cost",
    "count_effective_attacks",
    "event_counts",
    "events_between",
    "improvement_over",
    "overloads_in",
    "rising_edges_above",
    "soc_map",
    "soc_std_series",
    "supercap_cost",
    "survival_summary",
    "survival_time_after",
    "udeb_capacity_for_ratio",
    "vulnerable_rack_fraction",
]
