"""Quiescent-segment fast-forward: skip proven-periodic stretches.

Long background segments of a run are usually *quiescent*: demand sits
under every soft limit, batteries rest at their fixed point, nothing
trips and nothing is published. Stepping those stretches one tick at a
time is pure overhead — every step recomputes exactly the state it
started from. This module detects such stretches and jumps them in one
vectorized block, **bit-identically** to per-step execution.

The proof obligation is discharged empirically, never assumed:

1. **Probe.** At every management-period boundary (``P`` steps, where
   ``P * dt`` equals the management interval) the controller fingerprints
   the complete evolving simulation state — physics, control, meters,
   sensors, faults — via :func:`state_fingerprint`.
2. **Detect.** A fingerprint equal to the previous boundary's (lag-1
   match) suggests the dynamics became periodic with period ``P``.
3. **Capture.** The controller then *executes* one full capture block of
   ``C = lcm(P, record_every)`` steps normally, recording every
   externally-visible effect: throughput-work addends, recorder rows and
   whether any event was published.
4. **Verify.** At the end of the block the fingerprint must equal the
   block-start fingerprint and the block must be event-free. Only then is
   the block *proven*: the simulation is a fixed point of the block map,
   so every future block — until an external input changes — replays the
   captured effects verbatim.
5. **Jump.** Guarded by conservative caps (trace constancy, attacker
   onset, fault-plan edges, tripped breakers, segment/limit end), the
   controller replays ``k`` whole blocks: work addends are re-added in
   the original order (float addition is order-sensitive), recorder rows
   are tiled in bulk with freshly derived timestamps, and the engine
   clock advances without firing hooks. Anything unclear refuses the
   jump and falls back to per-step execution — correctness never rides
   on a heuristic.

Schemes opt in through ``DefenseScheme.ff_eligible``; vDEB-family
schemes opt out because their equalisation dynamics never become exactly
periodic (a lag match could only be a hash collision).
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .datacenter import DataCenterSimulation, SimResult, StepContext
    from .runner import Segment

__all__ = ["FastForwardStats", "SegmentFastForward", "state_fingerprint"]


def _feed(digest, value) -> None:
    """Feed one value into the hash with an unambiguous type tag."""
    if value is None:
        digest.update(b"\x00N")
    elif isinstance(value, (bool, np.bool_)):
        digest.update(b"\x00T" if value else b"\x00F")
    elif isinstance(value, (int, np.integer)):
        digest.update(b"\x00i" + struct.pack("<q", int(value)))
    elif isinstance(value, (float, np.floating)):
        # Raw IEEE-754 bits: 0.0 vs -0.0 and NaN payloads all count as
        # distinct state, which is exactly the bitwise contract.
        digest.update(b"\x00f" + struct.pack("<d", float(value)))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        digest.update(b"\x00s" + struct.pack("<q", len(raw)) + raw)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        head = f"{arr.dtype.str}|{arr.shape}".encode("utf-8")
        digest.update(b"\x00a" + struct.pack("<q", len(head)) + head)
        digest.update(arr.tobytes())
    elif isinstance(value, dict):
        digest.update(b"\x00d" + struct.pack("<q", len(value)))
        for key in sorted(value, key=str):
            _feed(digest, str(key))
            _feed(digest, value[key])
    elif isinstance(value, (list, tuple)):
        digest.update(b"\x00l" + struct.pack("<q", len(value)))
        for item in value:
            _feed(digest, item)
    else:
        raise SimulationError(
            f"cannot fingerprint a {type(value).__name__} in ff_state"
        )


def state_fingerprint(state: dict) -> bytes:
    """Canonical SHA-256 digest of a nested ``ff_state`` dict.

    Dict keys are visited in sorted order, floats hash by their IEEE-754
    bit pattern and arrays by dtype, shape and raw bytes, so two digests
    are equal exactly when the states are bitwise equal (up to hash
    collision, which for SHA-256 is not a practical concern).
    """
    digest = hashlib.sha256()
    _feed(digest, state)
    return digest.digest()


@dataclass
class FastForwardStats:
    """What the fast-forward layer did across a simulation's lifetime.

    Attributes:
        probes: Boundary fingerprints computed.
        lag_matches: Lag-1 fingerprint matches (capture triggers).
        captures: Capture blocks started.
        verified_blocks: Captures that passed end-of-block verification.
        jumps: Block jumps performed.
        steps_skipped: Total steps advanced without per-step execution.
        refused_jumps: Jump opportunities declined by a guard (trace
            change ahead, attacker onset, fault edge, tripped breaker,
            or no whole block of room left).
    """

    probes: int = 0
    lag_matches: int = 0
    captures: int = 0
    verified_blocks: int = 0
    jumps: int = 0
    steps_skipped: int = 0
    refused_jumps: int = 0


@dataclass
class _CapturedStep:
    """Externally-visible effects of one executed step of a block."""

    delivered_inc: float
    demanded_inc: float
    recorded: bool
    scalars: "dict[str, float] | None"
    vectors: "dict[str, np.ndarray] | None"


@dataclass
class _VerifiedBlock:
    """A proven block: its fixed-point fingerprint and captured effects."""

    fp: bytes
    anchor_time_s: float
    steps: "list[_CapturedStep]"


class SegmentFastForward:
    """Per-segment fast-forward state machine.

    One instance drives one :class:`~repro.sim.runner.Segment` of one
    run. ``begin_step`` is called before the pipeline executes a step;
    a non-zero return means the controller already replayed that many
    steps' effects and the caller must advance the clock past them.
    ``observe`` is called after each executed step so capture blocks can
    record their effects.

    Args:
        sim: The owning simulation.
        segment: The segment being executed.
        result: The accumulating run result (work integrals, recorder,
            event stream — the event count doubles as the block's
            event-free check).
        limit_s: Optional early end (a paused prefix); jumps never cross
            it even when the segment nominally continues.
    """

    def __init__(
        self,
        sim: "DataCenterSimulation",
        segment: "Segment",
        result: "SimResult",
        limit_s: "float | None" = None,
    ) -> None:
        self._sim = sim
        self._segment = segment
        self._result = result
        self._stats = sim.fast_forward_stats
        dt = segment.dt
        mgmt = sim.management_interval_s
        period = int(round(mgmt / dt)) if dt <= mgmt else 0
        # The probe grid must tile the management interval exactly;
        # otherwise the meter publication pattern has no period-P
        # structure and probing is wasted work.
        aligned = period >= 1 and abs(period * dt - mgmt) <= 1e-9 * mgmt
        self.enabled = bool(aligned and sim.scheme.ff_eligible)
        self._period = max(period, 1)
        self._block = math.lcm(self._period, segment.record_every)
        end_s = segment.end_s if limit_s is None else min(segment.end_s, limit_s)
        self._total_steps = max(
            0, math.ceil((end_s - segment.start_s) / dt - 1e-9)
        )
        self._last_fp: "bytes | None" = None
        self._capture: "list[_CapturedStep] | None" = None
        self._capture_fp: "bytes | None" = None
        self._capture_start = 0
        self._capture_time_s = 0.0
        self._capture_events = 0
        self._verified: "_VerifiedBlock | None" = None
        # Probe back-off: a stretch that keeps changing state at every
        # boundary (an active attack, a draining battery) will not
        # suddenly prove periodic, so after a run of mismatches probing
        # thins out to every PROBE_STRIDE-th boundary. Sound because a
        # lag match is only a *trigger* — the capture/verify pass is the
        # actual proof, and it is unaffected by how rarely we look.
        self._miss_streak = 0

    # ------------------------------------------------------------------ #
    # Hook-side API                                                       #
    # ------------------------------------------------------------------ #

    #: Consecutive lag mismatches before probing thins out.
    PROBE_BACKOFF = 4
    #: Boundary stride while backed off.
    PROBE_STRIDE = 8

    def begin_step(self, step_index: int, time_s: float) -> int:
        """Probe/verify/jump before the pipeline runs ``step_index``.

        Returns the number of steps skipped (their effects already
        replayed), or 0 to execute the step normally.
        """
        if not self.enabled or step_index % self._period != 0:
            return 0
        if (
            self._capture is None
            and self._verified is None
            and self._miss_streak >= self.PROBE_BACKOFF
            and (step_index // self._period) % self.PROBE_STRIDE != 0
        ):
            return 0
        fp = state_fingerprint(self._sim.ff_state(time_s))
        self._stats.probes += 1
        if (
            self._capture is not None
            and step_index == self._capture_start + self._block
        ):
            clean = (
                len(self._result.events) == self._capture_events
                and fp == self._capture_fp
                and len(self._capture) == self._block
            )
            if clean:
                self._verified = _VerifiedBlock(
                    fp=fp,
                    anchor_time_s=self._capture_time_s,
                    steps=self._capture,
                )
                self._stats.verified_blocks += 1
            self._capture = None
            self._capture_fp = None
        if self._verified is not None and fp == self._verified.fp:
            skipped = self._try_jump(step_index, time_s)
            if skipped:
                return skipped
        if (
            self._capture is None
            and self._verified is None
            and self._last_fp is not None
        ):
            if fp == self._last_fp:
                self._stats.lag_matches += 1
                self._miss_streak = 0
                if step_index + self._block <= self._total_steps:
                    self._capture = []
                    self._capture_fp = fp
                    self._capture_start = step_index
                    self._capture_time_s = time_s
                    self._capture_events = len(self._result.events)
                    self._stats.captures += 1
            else:
                self._miss_streak += 1
        self._last_fp = fp
        return 0

    def observe(self, ctx: "StepContext") -> None:
        """Record an executed step's effects while a capture is open."""
        if self._capture is None or len(self._capture) >= self._block:
            return
        if ctx.record:
            scalars = dict(ctx.row_scalars or {})
            # Timestamps are re-derived at replay time; everything else
            # in the row is state-determined and therefore periodic.
            scalars.pop("time_s", None)
            vectors = {
                name: np.array(vec, dtype=float, copy=True)
                for name, vec in (ctx.row_vectors or {}).items()
            }
        else:
            scalars = None
            vectors = None
        self._capture.append(
            _CapturedStep(
                delivered_inc=ctx.delivered_inc,
                demanded_inc=ctx.demanded_inc,
                recorded=ctx.record,
                scalars=scalars,
                vectors=vectors,
            )
        )

    # ------------------------------------------------------------------ #
    # Jump machinery                                                      #
    # ------------------------------------------------------------------ #

    def _try_jump(self, step_index: int, time_s: float) -> int:
        """Jump as many whole blocks as the guards allow; 0 on refusal."""
        sim = self._sim
        block = self._verified
        assert block is not None
        dt = self._segment.dt
        block_s = self._block * dt
        k = (self._total_steps - step_index) // self._block
        if k <= 0:
            return 0  # tail shorter than a block: not a guard refusal
        # The replay span (and the present) must sit inside the trace
        # span the block was proven in — a workload change invalidates
        # the captured effects even if the state has not diverged yet.
        horizon = sim.trace.constant_until(block.anchor_time_s)
        if math.isfinite(horizon):
            k = min(k, int(math.floor((horizon - time_s) / block_s + 1e-9)))
            if k <= 0:
                self._verified = None
                self._stats.refused_jumps += 1
                return 0
        if sim.attacker is not None:
            # Pre-onset the attacker is a bitwise no-op; the landing step
            # (and everything after) executes it normally.
            onset = sim.attacker.driver.config.start_s
            k = min(k, int(math.floor((onset - time_s) / block_s + 1e-9)))
        injector = sim.fault_injector
        if injector is not None:
            if injector.any_active:
                self._stats.refused_jumps += 1
                return 0
            # Probe from one step back: an edge landing exactly on the
            # current step has not been applied yet (the injector stage
            # runs after this hook), so it must block the jump rather
            # than slip past the strictly-after edge query.
            edge = injector.next_edge_after(time_s - dt)
            if math.isfinite(edge):
                k = min(k, int(math.floor((edge - time_s) / block_s + 1e-9)))
        grid = getattr(sim, "grid_injector", None)
        if grid is not None:
            # Hard guard: quiescent replay must never leapfrog a grid
            # window. An open window refuses outright (the duty phase
            # flips inside it); a future edge caps the jump exactly the
            # way fault edges do, probed from one step back for the
            # same not-yet-applied-edge reason.
            if grid.any_active:
                self._stats.refused_jumps += 1
                return 0
            edge = grid.next_edge_after(time_s - dt)
            if math.isfinite(edge):
                k = min(k, int(math.floor((edge - time_s) / block_s + 1e-9)))
        if sim.breakers.any_tripped:
            self._stats.refused_jumps += 1
            return 0
        if k <= 0:
            self._stats.refused_jumps += 1
            return 0
        self._replay(step_index, k)
        skipped = k * self._block
        sim.ff_shift_times(skipped * dt)
        self._stats.jumps += 1
        self._stats.steps_skipped += skipped
        return skipped

    def _replay(self, step_index: int, blocks: int) -> None:
        """Apply ``blocks`` repetitions of the proven block's effects."""
        segment = self._segment
        dt = segment.dt
        assert self._verified is not None
        steps = self._verified.steps
        result = self._result
        # Work integrals replay as the same sequence of float additions
        # per-step execution would perform — addition order is part of
        # the bitwise contract.
        for _ in range(blocks):
            for captured in steps:
                result.delivered_work += captured.delivered_inc
                result.demanded_work += captured.demanded_inc
        recorded = [
            (offset, captured)
            for offset, captured in enumerate(steps)
            if captured.recorded
        ]
        if not recorded:
            return
        rec = result.recorder
        # Timestamps are re-derived exactly as the engine derives them
        # (start + step * dt with an integer step), so replayed rows are
        # bitwise identical to executed ones.
        times = np.array(
            [
                segment.start_s + (step_index + offset + m * self._block) * dt
                for m in range(blocks)
                for offset, _ in recorded
            ]
        )
        rec.append_block("time_s", times)
        first = recorded[0][1]
        assert first.scalars is not None and first.vectors is not None
        for name in first.scalars:
            values = np.array([c.scalars[name] for _, c in recorded])
            rec.append_block(name, np.tile(values, blocks))
        for name in first.vectors:
            matrix = np.stack([c.vectors[name] for _, c in recorded])
            rec.append_block(name, np.tile(matrix, (blocks, 1)))
