"""Time-series recording for simulation runs.

A :class:`Recorder` collects named per-step channels (floats or small
vectors) and hands them back as numpy arrays, with CSV export for the
experiment harnesses. Channels are declared implicitly on first append;
every channel must then be appended exactly once per step, which catches
desynchronised instrumentation early.

Storage is preallocated: each channel owns a capacity-doubling numpy
buffer (1-D for scalars, 2-D for vectors), so appends are O(1) amortised
with no per-step Python-list or per-sample allocation, and fast-forwarded
segments can land whole blocks at once via :meth:`Recorder.append_block`.
:meth:`Recorder.as_array` exposes the filled prefix as a zero-copy view.
The reading API (``series``/``matrix``/``check_aligned``/``to_csv``) is
unchanged from the list-backed recorder, so experiment and figure code is
untouched.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from ..errors import SimulationError

#: Initial buffer capacity (rows) for a freshly declared channel.
_INITIAL_CAPACITY = 256


class _Decimation:
    """Shared offered-sample gating for row-budgeted buffers.

    Every buffer of a row-budgeted recorder counts the samples *offered*
    to it and stores only every ``stride``-th one. When a buffer fills its
    row budget it is decimated in place — every other retained row dropped
    and the stride doubled — so the kept rows always form a uniform
    subsample of the offered sequence (offered indices ``0, s, 2s, ...``).
    Because channels are appended in lockstep (one sample per channel per
    recorded step), every buffer's counters evolve identically and the
    channels stay step-aligned through any number of decimations.
    """

    __slots__ = ("offered", "stride", "budget")

    def __init__(self, budget: "int | None") -> None:
        if budget is not None and budget < 2:
            raise SimulationError("row budget must be at least 2")
        self.offered = 0
        self.stride = 1
        self.budget = budget

    def admit(self) -> bool:
        """Account one offered sample; True when it should be stored."""
        offered = self.offered
        self.offered = offered + 1
        return offered % self.stride == 0

    def still_due(self) -> bool:
        """Whether the sample just admitted survives a doubled stride."""
        return (self.offered - 1) % self.stride == 0


class _ScalarBuffer:
    """Capacity-doubling 1-D float buffer with optional row budget."""

    __slots__ = ("data", "count", "gate")

    def __init__(self, budget: "int | None" = None) -> None:
        self.data = np.empty(_INITIAL_CAPACITY, dtype=float)
        self.count = 0
        self.gate = _Decimation(budget)

    def _grow_to(self, needed: int) -> None:
        capacity = self.data.shape[0]
        while capacity < needed:
            capacity *= 2
        grown = np.empty(capacity, dtype=float)
        grown[: self.count] = self.data[: self.count]
        self.data = grown

    def _decimate(self) -> None:
        kept = self.data[: self.count : 2].copy()
        self.data[: kept.shape[0]] = kept
        self.count = kept.shape[0]
        self.gate.stride *= 2

    def append(self, value: float) -> None:
        gate = self.gate
        if not gate.admit():
            return
        if gate.budget is not None and self.count >= gate.budget:
            self._decimate()
            if not gate.still_due():
                return
        if self.count == self.data.shape[0]:
            self._grow_to(self.count + 1)
        self.data[self.count] = value
        self.count += 1

    def extend(self, values: np.ndarray) -> None:
        gate = self.gate
        if gate.budget is not None or gate.stride != 1:
            for value in values:
                self.append(float(value))
            return
        n = values.shape[0]
        if self.count + n > self.data.shape[0]:
            self._grow_to(self.count + n)
        self.data[self.count : self.count + n] = values
        self.count += n
        gate.offered += n

    def view(self) -> np.ndarray:
        out = self.data[: self.count]
        out.flags.writeable = False
        return out


class _VectorBuffer:
    """Capacity-doubling ``(rows, width)`` buffer with optional row budget."""

    __slots__ = ("data", "count", "gate")

    def __init__(self, width: int, budget: "int | None" = None) -> None:
        self.data = np.empty((_INITIAL_CAPACITY, width), dtype=float)
        self.count = 0
        self.gate = _Decimation(budget)

    @property
    def width(self) -> int:
        return self.data.shape[1]

    def _grow_to(self, needed: int) -> None:
        capacity = self.data.shape[0]
        while capacity < needed:
            capacity *= 2
        grown = np.empty((capacity, self.width), dtype=float)
        grown[: self.count] = self.data[: self.count]
        self.data = grown

    def _decimate(self) -> None:
        kept = self.data[: self.count : 2].copy()
        self.data[: kept.shape[0]] = kept
        self.count = kept.shape[0]
        self.gate.stride *= 2

    def append(self, value: np.ndarray) -> None:
        if value.shape != (self.width,):
            raise SimulationError(
                f"vector sample shape {value.shape} != ({self.width},)"
            )
        gate = self.gate
        if not gate.admit():
            return
        if gate.budget is not None and self.count >= gate.budget:
            self._decimate()
            if not gate.still_due():
                return
        if self.count == self.data.shape[0]:
            self._grow_to(self.count + 1)
        self.data[self.count] = value
        self.count += 1

    def extend(self, values: np.ndarray) -> None:
        if values.ndim != 2 or values.shape[1] != self.width:
            raise SimulationError(
                f"vector block shape {values.shape} incompatible with "
                f"width {self.width}"
            )
        gate = self.gate
        if gate.budget is not None or gate.stride != 1:
            for row in values:
                self.append(row)
            return
        n = values.shape[0]
        if self.count + n > self.data.shape[0]:
            self._grow_to(self.count + n)
        self.data[self.count : self.count + n] = values
        self.count += n
        gate.offered += n

    def view(self) -> np.ndarray:
        out = self.data[: self.count]
        out.flags.writeable = False
        return out


class Recorder:
    """Append-only, step-aligned channel store on preallocated buffers.

    Args:
        row_budget: Optional bound (>= 2) on the retained rows per
            channel. A full channel is decimated in place — every other
            row dropped, sampling stride doubled — so memory stays
            constant while the kept rows remain a uniform subsample of
            the offered sequence. ``None`` retains every offered row.
    """

    def __init__(self, row_budget: "int | None" = None) -> None:
        if row_budget is not None and row_budget < 2:
            raise SimulationError("row budget must be at least 2")
        self._row_budget = row_budget
        self._channels: "dict[str, _ScalarBuffer]" = {}
        self._vector_channels: "dict[str, _VectorBuffer]" = {}

    @property
    def row_budget(self) -> "int | None":
        """The configured per-channel row bound (``None`` = unbounded)."""
        return self._row_budget

    @property
    def stride(self) -> int:
        """Current downsampling stride (1 until a budget decimation)."""
        for buffer in self._channels.values():
            return buffer.gate.stride
        for vbuffer in self._vector_channels.values():
            return vbuffer.gate.stride
        return 1

    # ------------------------------------------------------------------ #
    # Writing                                                             #
    # ------------------------------------------------------------------ #

    def append(self, channel: str, value: float) -> None:
        """Append one scalar sample to ``channel``."""
        buffer = self._channels.get(channel)
        if buffer is None:
            buffer = self._channels[channel] = _ScalarBuffer(
                self._row_budget
            )
        buffer.append(float(value))

    def append_vector(
        self, channel: str, value: np.ndarray, copy: bool = True
    ) -> None:
        """Append one vector sample (e.g. per-rack SOC) to ``channel``.

        Args:
            channel: Vector channel name.
            value: The sample; one entry per lane.
            copy: With ``True`` (the default) the sample is coerced to a
                float array before being written into the channel buffer —
                safe for any array-like. Callers that already hold a fresh
                ``float64`` vector from a vectorized kernel may pass
                ``copy=False`` to skip the coercion; the value is written
                straight into the preallocated buffer (the recorder never
                aliases caller memory either way).
        """
        if copy:
            value = np.asarray(value, dtype=float)
        buffer = self._vector_channels.get(channel)
        if buffer is None:
            if value.ndim != 1:
                raise SimulationError("vector samples must be 1-D")
            buffer = self._vector_channels[channel] = _VectorBuffer(
                value.shape[0], self._row_budget
            )
        buffer.append(value)

    def append_row(self, **values: float) -> None:
        """Append several scalar channels at once."""
        for channel, value in values.items():
            self.append(channel, value)

    def append_block(self, channel: str, values: np.ndarray) -> None:
        """Bulk-append many samples to one channel in a single write.

        The fast-forward path lands whole quiescent blocks this way: a
        1-D array extends a scalar channel, a ``(rows, width)`` array a
        vector channel. New channels are declared by the block's shape.
        """
        block = np.asarray(values, dtype=float)
        if block.ndim == 1:
            if channel in self._vector_channels:
                raise SimulationError(
                    f"channel {channel!r} holds vectors; block must be 2-D"
                )
            buffer = self._channels.get(channel)
            if buffer is None:
                buffer = self._channels[channel] = _ScalarBuffer(
                    self._row_budget
                )
            buffer.extend(block)
        elif block.ndim == 2:
            if channel in self._channels:
                raise SimulationError(
                    f"channel {channel!r} holds scalars; block must be 1-D"
                )
            buffer = self._vector_channels.get(channel)
            if buffer is None:
                buffer = self._vector_channels[channel] = _VectorBuffer(
                    block.shape[1], self._row_budget
                )
            buffer.extend(block)
        else:
            raise SimulationError("blocks must be 1-D or 2-D")

    # ------------------------------------------------------------------ #
    # Reading                                                             #
    # ------------------------------------------------------------------ #

    @property
    def channels(self) -> "list[str]":
        """All scalar channel names."""
        return sorted(self._channels)

    @property
    def vector_channels(self) -> "list[str]":
        """All vector channel names."""
        return sorted(self._vector_channels)

    def __len__(self) -> int:
        """Number of samples in the longest channel."""
        lengths = [b.count for b in self._channels.values()]
        lengths += [b.count for b in self._vector_channels.values()]
        return max(lengths, default=0)

    def as_array(self, channel: str) -> np.ndarray:
        """One channel's filled prefix as a zero-copy, read-only view.

        Scalar channels come back 1-D, vector channels ``(steps, width)``.
        The view aliases the live buffer: it is valid until the next
        append to the channel (growth may reallocate the storage).

        Raises:
            SimulationError: for unknown channels.
        """
        if channel in self._channels:
            return self._channels[channel].view()
        if channel in self._vector_channels:
            return self._vector_channels[channel].view()
        raise SimulationError(f"unknown channel: {channel!r}")

    def series(self, channel: str) -> np.ndarray:
        """One scalar channel as a 1-D array (a private copy).

        Raises:
            SimulationError: for unknown channels.
        """
        if channel not in self._channels:
            raise SimulationError(f"unknown channel: {channel!r}")
        return self._channels[channel].view().copy()

    def matrix(self, channel: str) -> np.ndarray:
        """One vector channel as a ``(steps, width)`` matrix."""
        if channel not in self._vector_channels:
            raise SimulationError(f"unknown vector channel: {channel!r}")
        return self._vector_channels[channel].view().copy()

    def check_aligned(self) -> None:
        """Verify all channels hold the same number of samples.

        Raises:
            SimulationError: listing the mismatched channels.
        """
        lengths = {name: b.count for name, b in self._channels.items()}
        lengths.update(
            {name: b.count for name, b in self._vector_channels.items()}
        )
        if len(set(lengths.values())) > 1:
            raise SimulationError(f"channels out of sync: {lengths}")

    # ------------------------------------------------------------------ #
    # Export                                                              #
    # ------------------------------------------------------------------ #

    def to_csv(self, path: "str | os.PathLike") -> None:
        """Write the scalar channels as one CSV with a header row."""
        self.check_aligned()
        names = self.channels
        if not names:
            raise SimulationError("nothing recorded")
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for row in zip(*(self.as_array(n) for n in names)):
                writer.writerow([float(v) for v in row])


class ListRecorder(Recorder):
    """The PR-2-era list-backed recorder, kept as a benchmark reference.

    Semantically identical to :class:`Recorder` but grows Python lists
    per channel per step (one allocation and one defensive copy per
    vector sample). The sweep benchmark swaps it in to attribute how much
    of the speedup the preallocated buffers account for; production code
    never uses it.
    """

    def __init__(self) -> None:
        super().__init__()
        self._scalar_lists: "dict[str, list[float]]" = {}
        self._vector_lists: "dict[str, list[np.ndarray]]" = {}

    def append(self, channel: str, value: float) -> None:
        self._scalar_lists.setdefault(channel, []).append(float(value))

    def append_vector(
        self, channel: str, value: np.ndarray, copy: bool = True
    ) -> None:
        self._vector_lists.setdefault(channel, []).append(
            np.asarray(value, dtype=float).copy()
        )

    def append_block(self, channel: str, values: np.ndarray) -> None:
        block = np.asarray(values, dtype=float)
        if block.ndim == 1:
            self._scalar_lists.setdefault(channel, []).extend(
                float(v) for v in block
            )
        else:
            self._vector_lists.setdefault(channel, []).extend(
                block[i].copy() for i in range(block.shape[0])
            )

    def _materialise(self) -> None:
        """Flush the lists into the buffer store for reads."""
        for name, samples in self._scalar_lists.items():
            buffer = self._channels.get(name)
            if buffer is None:
                buffer = self._channels[name] = _ScalarBuffer()
            if buffer.count != len(samples):
                buffer.count = 0
                buffer.extend(np.asarray(samples, dtype=float))
        for name, rows in self._vector_lists.items():
            vbuffer = self._vector_channels.get(name)
            if vbuffer is None:
                vbuffer = self._vector_channels[name] = _VectorBuffer(
                    rows[0].shape[0]
                )
            if vbuffer.count != len(rows):
                vbuffer.count = 0
                vbuffer.extend(np.vstack(rows))

    def __len__(self) -> int:
        lengths = [len(v) for v in self._scalar_lists.values()]
        lengths += [len(v) for v in self._vector_lists.values()]
        return max(lengths, default=0)

    def as_array(self, channel: str) -> np.ndarray:
        self._materialise()
        return super().as_array(channel)

    def series(self, channel: str) -> np.ndarray:
        if channel not in self._scalar_lists:
            raise SimulationError(f"unknown channel: {channel!r}")
        self._materialise()
        return super().series(channel)

    def matrix(self, channel: str) -> np.ndarray:
        if channel not in self._vector_lists:
            raise SimulationError(f"unknown vector channel: {channel!r}")
        self._materialise()
        return super().matrix(channel)

    def check_aligned(self) -> None:
        lengths = {name: len(v) for name, v in self._scalar_lists.items()}
        lengths.update(
            {name: len(v) for name, v in self._vector_lists.items()}
        )
        if len(set(lengths.values())) > 1:
            raise SimulationError(f"channels out of sync: {lengths}")

    @property
    def channels(self) -> "list[str]":
        return sorted(self._scalar_lists)

    @property
    def vector_channels(self) -> "list[str]":
        return sorted(self._vector_lists)
