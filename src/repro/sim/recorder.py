"""Time-series recording for simulation runs.

A :class:`Recorder` collects named per-step channels (floats or small
vectors) and hands them back as numpy arrays, with CSV export for the
experiment harnesses. Channels are declared implicitly on first append;
every channel must then be appended exactly once per step, which catches
desynchronised instrumentation early.
"""

from __future__ import annotations

import csv
import os

import numpy as np

from ..errors import SimulationError


class Recorder:
    """Append-only, step-aligned channel store."""

    def __init__(self) -> None:
        self._channels: "dict[str, list[float]]" = {}
        self._vector_channels: "dict[str, list[np.ndarray]]" = {}

    # ------------------------------------------------------------------ #
    # Writing                                                             #
    # ------------------------------------------------------------------ #

    def append(self, channel: str, value: float) -> None:
        """Append one scalar sample to ``channel``."""
        self._channels.setdefault(channel, []).append(float(value))

    def append_vector(self, channel: str, value: np.ndarray) -> None:
        """Append one vector sample (e.g. per-rack SOC) to ``channel``."""
        self._vector_channels.setdefault(channel, []).append(
            np.asarray(value, dtype=float).copy()
        )

    def append_row(self, **values: float) -> None:
        """Append several scalar channels at once."""
        for channel, value in values.items():
            self.append(channel, value)

    # ------------------------------------------------------------------ #
    # Reading                                                             #
    # ------------------------------------------------------------------ #

    @property
    def channels(self) -> "list[str]":
        """All scalar channel names."""
        return sorted(self._channels)

    @property
    def vector_channels(self) -> "list[str]":
        """All vector channel names."""
        return sorted(self._vector_channels)

    def __len__(self) -> int:
        """Number of samples in the longest channel."""
        lengths = [len(v) for v in self._channels.values()]
        lengths += [len(v) for v in self._vector_channels.values()]
        return max(lengths, default=0)

    def series(self, channel: str) -> np.ndarray:
        """One scalar channel as a 1-D array.

        Raises:
            SimulationError: for unknown channels.
        """
        if channel not in self._channels:
            raise SimulationError(f"unknown channel: {channel!r}")
        return np.asarray(self._channels[channel])

    def matrix(self, channel: str) -> np.ndarray:
        """One vector channel as a ``(steps, width)`` matrix."""
        if channel not in self._vector_channels:
            raise SimulationError(f"unknown vector channel: {channel!r}")
        return np.vstack(self._vector_channels[channel])

    def check_aligned(self) -> None:
        """Verify all channels hold the same number of samples.

        Raises:
            SimulationError: listing the mismatched channels.
        """
        lengths = {name: len(v) for name, v in self._channels.items()}
        lengths.update(
            {name: len(v) for name, v in self._vector_channels.items()}
        )
        if len(set(lengths.values())) > 1:
            raise SimulationError(f"channels out of sync: {lengths}")

    # ------------------------------------------------------------------ #
    # Export                                                              #
    # ------------------------------------------------------------------ #

    def to_csv(self, path: "str | os.PathLike") -> None:
        """Write the scalar channels as one CSV with a header row."""
        self.check_aligned()
        names = self.channels
        if not names:
            raise SimulationError("nothing recorded")
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(names)
            for row in zip(*(self._channels[n] for n in names)):
                writer.writerow(row)
