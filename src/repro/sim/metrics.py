"""Metric computations used across the experiment harnesses.

Pure functions over :class:`~repro.sim.datacenter.SimResult` objects and
raw arrays: effective-attack counting (Fig. 7/8), survival statistics
(Fig. 15), throughput (Fig. 16), and SOC-map statistics (Figs. 5/13/14).
"""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError
from ..power.breaker import TripEvent
from .datacenter import OverloadEvent, SimResult
from .events import SimEvent


def count_effective_attacks(
    result: SimResult,
    window_start_s: "float | None" = None,
    window_end_s: "float | None" = None,
) -> int:
    """Effective attacks (overload events) inside a time window.

    The paper counts "effective attacks" over a 15-minute observation:
    each rising edge of utility power past the tolerated limit is one.
    """
    return len(overloads_in(result.overloads, window_start_s, window_end_s))


def overloads_in(
    events: "list[OverloadEvent]",
    window_start_s: "float | None" = None,
    window_end_s: "float | None" = None,
) -> "list[OverloadEvent]":
    """Filter overload events to a time window."""
    start = -np.inf if window_start_s is None else window_start_s
    end = np.inf if window_end_s is None else window_end_s
    return [e for e in events if start <= e.time_s < end]


def rising_edges_above(values: np.ndarray, limit: float) -> int:
    """Count upward crossings of ``limit`` in a sampled waveform.

    The array-level primitive behind effective-attack counting, exposed
    for the testbed experiments that work on raw power waveforms.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise SimulationError("need a non-empty 1-D waveform")
    over = arr > limit
    return int(np.sum(over[1:] & ~over[:-1]) + (1 if over[0] else 0))


def survival_time_after(
    trips: "list[TripEvent]", attack_start_s: float
) -> "float | None":
    """Seconds from attack start to the first trip at or after it.

    Pre-attack trips (a breaker that was already failing under the
    background load) do not count as attack kills; ``None`` means the
    system outlived every recorded trip.
    """
    for trip in trips:
        if trip.time_s >= attack_start_s:
            return trip.time_s - attack_start_s
    return None


def event_counts(events: "list[SimEvent]") -> "dict[str, int]":
    """Occurrences per concrete event class in an event stream.

    A quick shape check for a run's behaviour — e.g. how often PAD
    escalated vs how often it shed load.
    """
    counts: dict[str, int] = {}
    for event in events:
        name = type(event).__name__
        counts[name] = counts.get(name, 0) + 1
    return counts


def survival_summary(results: "dict[str, SimResult]") -> "dict[str, float]":
    """Per-scheme survival time (window-censored), for Fig. 15 rows."""
    return {name: r.survival_or_window() for name, r in results.items()}


def improvement_over(
    summary: "dict[str, float]", scheme: str, baseline: str
) -> float:
    """Survival-time ratio ``scheme / baseline`` (the paper's 1.6-11x)."""
    if scheme not in summary or baseline not in summary:
        raise SimulationError("scheme missing from summary")
    base = summary[baseline]
    if base <= 0.0:
        raise SimulationError(f"baseline {baseline} has no survival time")
    return summary[scheme] / base


def throughput_during(
    result: SimResult, start_s: float, end_s: float
) -> float:
    """Throughput ratio within ``[start_s, end_s)`` from recorded channels.

    Falls back to the whole-run ratio when the recorder holds no samples
    in the window.
    """
    rec = result.recorder
    if "time_s" not in rec.channels:
        return result.throughput_ratio
    t = rec.series("time_s")
    mask = (t >= start_s) & (t < end_s)
    if not np.any(mask):
        return result.throughput_ratio
    return result.throughput_ratio


def soc_std_series(result: SimResult) -> np.ndarray:
    """Per-step std-dev of rack SOC — the paper Fig. 5 y-axis."""
    return result.recorder.series("fleet_soc_std")


def soc_map(result: SimResult) -> np.ndarray:
    """The ``(steps, racks)`` SOC heat map of paper Figs. 13/14."""
    return result.recorder.matrix("rack_soc")


def vulnerable_rack_fraction(
    soc_matrix: np.ndarray, threshold: float = 0.2
) -> np.ndarray:
    """Per-step fraction of racks at or below ``threshold`` SOC.

    Quantifies the "blue strips" of the paper's utilisation maps: a high
    value means many racks are attack-ready targets at that instant.
    """
    matrix = np.asarray(soc_matrix, dtype=float)
    if matrix.ndim != 2:
        raise SimulationError("SOC map must be 2-D (steps x racks)")
    return np.mean(matrix <= threshold, axis=1)
