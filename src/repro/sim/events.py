"""Typed simulation events and the engine-level event bus.

Every occurrence the simulation core used to track with ad-hoc list
appends and scattered state flags — overloads, breaker trips, policy
escalations, shedding/wake actions, vDEB soft-limit reassignments,
capping flips — is a :class:`SimEvent` published on an :class:`EventBus`.

The bus is deliberately synchronous and in-process: ``publish`` walks the
event's class hierarchy, so a handler subscribed to :class:`SimEvent`
sees the whole stream while a handler subscribed to
:class:`BreakerTripped` sees only trips. Handlers run in subscription
order, which makes event ordering within a simulation step testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type, TypeVar

import numpy as np

from ..core.policy import SecurityLevel
from ..errors import SimulationError
from ..power.breaker import TripEvent


@dataclass(frozen=True)
class SimEvent:
    """Base class for everything published on the bus.

    Attributes:
        time_s: Simulation time at which the occurrence was observed.
    """

    time_s: float


@dataclass(frozen=True)
class OverloadEvent(SimEvent):
    """An effective attack: a rack feed exceeded its rating.

    Attributes:
        time_s: When the rack's utility draw first crossed the rating.
        rack_id: The overloaded rack (``-1`` for the cluster feed).
        utility_w: The offending draw.
        rating_w: The rating it crossed.
    """

    rack_id: int
    utility_w: float
    rating_w: float


@dataclass(frozen=True)
class BreakerTripped(SimEvent):
    """A thermal-magnetic breaker opened.

    Attributes:
        rack_id: The protected rack (``-1`` for the cluster feed).
        trip: The breaker's own trip record (power, ratio, element).
    """

    rack_id: int
    trip: TripEvent


@dataclass(frozen=True)
class PolicyEscalation(SimEvent):
    """The hierarchical policy changed emergency level (paper Fig. 9).

    Attributes:
        from_level: Level before the observation.
        to_level: Level after (may be lower — de-escalations too).
    """

    from_level: SecurityLevel
    to_level: SecurityLevel


@dataclass(frozen=True)
class SheddingAction(SimEvent):
    """Level-3 shedding changed the sleep set.

    Attributes:
        shed: Server ids put to sleep this update.
        woken: Server ids released this update.
    """

    shed: "tuple[int, ...]"
    woken: "tuple[int, ...]"


@dataclass(frozen=True)
class SoftLimitsReassigned(SimEvent):
    """The vDEB controller moved the iPDU soft limits.

    Attributes:
        soft_limits_w: The new per-rack soft limits (copy).
    """

    soft_limits_w: np.ndarray


@dataclass(frozen=True)
class CappingChanged(SimEvent):
    """A rack's DVFS capping state flipped.

    Attributes:
        rack_id: The rack whose cap controller changed state.
        capped: New state — True when the rack runs capped next tick.
    """

    rack_id: int
    capped: bool


@dataclass(frozen=True)
class FaultEvent(SimEvent):
    """Base class for infrastructure-fault occurrences.

    Published by the :class:`~repro.faults.injector.FaultInjector` at
    fault-window edges, in declaration order within a step — the
    differential harness asserts this ordering across backends.

    Attributes:
        fault: The fault kind label (``FaultSpec.kind``).
        racks: Racks the fault touches (``-1`` for the cluster feed).
    """

    fault: str
    racks: "tuple[int, ...]"


@dataclass(frozen=True)
class FaultInjected(FaultEvent):
    """A fault window opened (or a one-shot fault fired)."""


@dataclass(frozen=True)
class FaultCleared(FaultEvent):
    """A fault window closed; the faulted path is healthy again."""


@dataclass(frozen=True)
class GridEvent(SimEvent):
    """Base class for grid-side disturbance occurrences.

    Window edges are published by the
    :class:`~repro.grid.injector.GridInjector` in declaration order
    within a step; reserve/ride-through transitions are published by the
    defense schemes. The differential harness asserts the combined
    stream's ordering across backends.

    Attributes:
        event: The grid-event kind label (``GridEventSpec.kind``) or
            the scheme-side transition name.
        racks: Racks the occurrence touches.
    """

    event: str
    racks: "tuple[int, ...]"


@dataclass(frozen=True)
class GridEventStarted(GridEvent):
    """A grid-disturbance window opened (sag, brownout, regulation)."""


@dataclass(frozen=True)
class GridEventCleared(GridEvent):
    """A grid-disturbance window closed; the feed is healthy again."""


@dataclass(frozen=True)
class RideThroughEngaged(GridEvent):
    """Rising edge: racks began covering a feed deficit from battery."""


@dataclass(frozen=True)
class ReserveBreached(GridEvent):
    """Rising edge: the defense SoC slice above the ride-through floor
    ran dry on these racks — the scheme degrades (sheds, escalates)
    instead of silently browning out."""


#: An event handler: called synchronously with the published event.
Handler = Callable[[SimEvent], None]

E = TypeVar("E", bound=SimEvent)


class EventBus:
    """Synchronous publish/subscribe hub for :class:`SimEvent` streams.

    Args:
        record: Keep a chronological history of every published event
            (handy for standalone engines and tests). Long-lived
            simulations pass ``False`` and capture per-run streams via
            subscriptions instead, so repeated runs do not accumulate.
    """

    def __init__(self, record: bool = True) -> None:
        self._handlers: "dict[type, list[Handler]]" = {}
        self._record = record
        self._events: "list[SimEvent]" = []

    def subscribe(
        self, event_type: "Type[E]", handler: "Callable[[E], None]"
    ) -> "Callable[[], None]":
        """Register ``handler`` for ``event_type`` and its subclasses.

        Returns:
            A zero-argument callable that unsubscribes the handler.
        """
        if not (isinstance(event_type, type)
                and issubclass(event_type, SimEvent)):
            raise SimulationError("can only subscribe to SimEvent types")
        handlers = self._handlers.setdefault(event_type, [])
        handlers.append(handler)  # type: ignore[arg-type]

        def unsubscribe() -> None:
            if handler in handlers:
                handlers.remove(handler)  # type: ignore[arg-type]

        return unsubscribe

    def publish(self, event: SimEvent) -> None:
        """Deliver ``event`` to every matching handler, in order."""
        if not isinstance(event, SimEvent):
            raise SimulationError("can only publish SimEvent instances")
        if self._record:
            self._events.append(event)
        for cls in type(event).__mro__:
            for handler in tuple(self._handlers.get(cls, ())):
                handler(event)
            if cls is SimEvent:
                break

    # ------------------------------------------------------------------ #
    # History                                                             #
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> "list[SimEvent]":
        """The recorded history (copy), in publication order."""
        return list(self._events)

    def of_type(self, event_type: "Type[E]") -> "list[E]":
        """Recorded events that are instances of ``event_type``."""
        return [e for e in self._events if isinstance(e, event_type)]

    def clear(self) -> None:
        """Drop the recorded history (subscriptions are kept)."""
        self._events.clear()


def events_between(
    events: "list[SimEvent]",
    start_s: "float | None" = None,
    end_s: "float | None" = None,
) -> "list[SimEvent]":
    """Filter an event stream to ``start_s <= time < end_s``."""
    lo = -np.inf if start_s is None else start_s
    hi = np.inf if end_s is None else end_s
    return [e for e in events if lo <= e.time_s < hi]
