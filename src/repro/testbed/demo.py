"""Testbed demonstrations of the attack model (paper Figs. 6, 7, 12).

These produce the time-series the paper uses to *illustrate* the threat:

* :func:`two_phase_demo` — Fig. 6: the two-phase attack on the real rig.
  Normal load, malicious load, and battery capacity over ~5 minutes; the
  battery visibly runs out at the Phase-I/II boundary and the Phase-II
  spikes are narrow enough to hide from coarse monitoring.
* :func:`effective_attack_demo` — Fig. 7: repeated hidden spikes against
  a power budget; some attempts fail (a benign power valley absorbs
  them), and an effective attack eventually lands.
* :func:`virus_trace_examples` — Fig. 12: the dense and sparse collected
  attack traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attack.attacker import Attacker
from ..attack.spikes import SpikeTrainConfig
from ..attack.virus import VirusKind, profile_for, virus_power_trace
from ..defense import SCHEMES
from ..sim.datacenter import DataCenterSimulation
from .platform import TestbedConfig, TestbedPlatform


@dataclass(frozen=True)
class TwoPhaseDemo:
    """The Fig.-6 time series (percent of rack peak, per second).

    Attributes:
        time_s: Sample times.
        normal_load_pct: Benign rack power, % of nameplate.
        malicious_load_pct: Rack power with the virus, % of nameplate.
        battery_capacity_pct: Battery state of charge, %.
        phase2_start_s: When the virus mutated to hidden spikes.
    """

    time_s: np.ndarray
    normal_load_pct: np.ndarray
    malicious_load_pct: np.ndarray
    battery_capacity_pct: np.ndarray
    phase2_start_s: "float | None"


def two_phase_demo(
    duration_s: float = 280.0,
    dt: float = 0.5,
    seed: int = 11,
) -> TwoPhaseDemo:
    """Run the two-phase attack against the mini rack, PS-protected.

    The battery is deliberately small (short autonomy) so the full
    Phase-I drain and Phase-II mutation fit in the demo window, exactly
    like the paper's figure.
    """
    testbed = TestbedConfig(battery_autonomy_s=20.0, normal_utilisation=0.40)
    config = testbed.to_datacenter_config()
    trace = testbed.normal_load_trace(duration_s, dt, seed=seed)
    attacker = Attacker(
        nodes=(0, 1, 2),
        kind=VirusKind.CPU,
        spikes=SpikeTrainConfig(width_s=2.0, rate_per_min=6.0,
                                baseline_util=0.15),
        start_s=0.0,
        autonomy_estimate_s=90.0,
        phase2_patience_s=None,
        seed=seed,
    )
    sim = DataCenterSimulation(
        config, trace, SCHEMES["PS"], attacker=attacker,
        management_interval_s=5.0,
    )
    result = sim.run(duration_s=duration_s, dt=dt, record_every=1)
    rec = result.recorder
    nameplate = testbed.nameplate_w
    platform = TestbedPlatform(testbed)
    normal = platform.rack_power_waveform(trace.matrix)
    steps = min(len(normal), len(rec.series("time_s")))
    return TwoPhaseDemo(
        time_s=rec.series("time_s")[:steps],
        normal_load_pct=100.0 * normal[:steps] / nameplate,
        malicious_load_pct=100.0 * rec.series("total_demand_w")[:steps] / nameplate,
        battery_capacity_pct=100.0 * rec.series("fleet_soc_mean")[:steps],
        phase2_start_s=attacker.driver.phase2_started_s,
    )


@dataclass(frozen=True)
class EffectiveAttackDemo:
    """The Fig.-7 time series.

    Attributes:
        time_s: Sample times.
        budget_w: The enforced power budget (flat line).
        normal_w: Benign rack power.
        attacked_w: Rack power with the malicious load.
        effective_attack_times_s: Times where the attacked power crossed
            the budget (failed attempts are crossings of normal power
            valleys that stay under).
    """

    time_s: np.ndarray
    budget_w: float
    normal_w: np.ndarray
    attacked_w: np.ndarray
    effective_attack_times_s: "tuple[float, ...]"


def effective_attack_demo(
    duration_s: float = 70.0,
    dt: float = 0.1,
    seed: int = 13,
) -> EffectiveAttackDemo:
    """Hidden spikes against a budget: some fail, one eventually lands."""
    testbed = TestbedConfig(normal_utilisation=0.55, noise_sigma=0.02,
                            budget_fraction=0.88)
    platform = TestbedPlatform(testbed)
    spikes = SpikeTrainConfig(width_s=1.5, rate_per_min=8.0, baseline_util=0.45)
    normal, attacked = platform.attack_waveform(
        VirusKind.CPU, attacker_nodes=2, spikes=spikes,
        duration_s=duration_s, dt=dt, seed=seed,
    )
    budget = testbed.budget_w
    over = attacked > budget
    edges = np.nonzero(over[1:] & ~over[:-1])[0] + 1
    times = tuple(float(i * dt) for i in edges)
    t = np.arange(len(normal)) * dt
    return EffectiveAttackDemo(
        time_s=t,
        budget_w=budget,
        normal_w=normal,
        attacked_w=attacked,
        effective_attack_times_s=times,
    )


def virus_trace_examples(
    duration_s: float = 240.0, dt: float = 1.0, seed: int = 17
) -> "dict[str, np.ndarray]":
    """The Fig.-12 collected attack traces (percent of peak utilisation).

    Returns:
        ``{"dense": ..., "sparse": ...}`` waveforms.
    """
    profile = profile_for(VirusKind.CPU)
    dense = virus_power_trace(
        profile, duration_s, dt,
        spike_width_s=8.0, spike_period_s=20.0, baseline_util=0.55,
        seed=seed,
    )
    sparse = virus_power_trace(
        profile, duration_s, dt,
        spike_width_s=4.0, spike_period_s=60.0, baseline_util=0.45,
        seed=seed,
    )
    return {"dense": dense * 100.0, "sparse": sparse * 100.0}
