"""Software replica of the paper's mini-rack testing platform (Fig. 11-A)."""

from .demo import (
    EffectiveAttackDemo,
    TwoPhaseDemo,
    effective_attack_demo,
    two_phase_demo,
    virus_trace_examples,
)
from .platform import TestbedConfig, TestbedPlatform

__all__ = [
    "EffectiveAttackDemo",
    "TestbedConfig",
    "TestbedPlatform",
    "TwoPhaseDemo",
    "effective_attack_demo",
    "two_phase_demo",
    "virus_trace_examples",
]
