"""Software replica of the paper's scaled-down testing platform (Fig. 11-A).

The paper validates its attack model on a mini rack: a management node plus
server nodes behind one PDU, backed by three YUASA UPS batteries — 800 W
total capacity, 10 minutes of autonomy at full load, per-minute battery
monitoring, SNMP-switchable UPSes, and a precision power meter.

We replicate that rig with the same substrates as the big cluster — one
rack, five nodes, one battery bank — so the testbed experiments (Figs.
6-8, 12, Table I) exercise exactly the code paths the cluster simulation
uses, just at bench scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..attack.spikes import SpikeTrain, SpikeTrainConfig
from ..attack.virus import VirusKind, profile_for
from ..config import (
    BatteryConfig,
    BreakerConfig,
    ClusterConfig,
    DataCenterConfig,
    RackConfig,
    ServerConfig,
    SupercapConfig,
)
from ..errors import ConfigError
from ..rng import child_rng
from ..workload.trace import UtilizationTrace


@dataclass(frozen=True)
class TestbedConfig:
    """The mini-rack's parameters.

    Attributes:
        nodes: Server nodes in the rack (the paper's rig has a handful;
            the attacker can control up to ``nodes - 1``).
        node_idle_w: Per-node active-idle power.
        node_peak_w: Per-node peak power (defaults make the rack's
            nameplate the paper's 800 W).
        battery_autonomy_s: Full-load autonomy of the UPS bank (paper:
            10 minutes).
        budget_fraction: PDU budget as a fraction of nameplate.
        normal_utilisation: Mean CPU utilisation of the benign load.
        noise_sigma: AR(1) innovation std of the benign load.
    """

    nodes: int = 5
    node_idle_w: float = 60.0
    node_peak_w: float = 160.0
    battery_autonomy_s: float = 600.0
    budget_fraction: float = 0.75
    normal_utilisation: float = 0.35
    noise_sigma: float = 0.04

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigError("testbed needs at least two nodes")
        if self.node_peak_w <= self.node_idle_w:
            raise ConfigError("node peak must exceed idle power")
        if self.battery_autonomy_s <= 0.0:
            raise ConfigError("battery autonomy must be positive")
        if not 0.0 < self.budget_fraction <= 1.0:
            raise ConfigError("budget fraction must be in (0, 1]")
        if not 0.0 <= self.normal_utilisation < 1.0:
            raise ConfigError("normal utilisation must be in [0, 1)")
        if self.noise_sigma < 0.0:
            raise ConfigError("noise sigma must be non-negative")

    @property
    def nameplate_w(self) -> float:
        """Rack nameplate power (the paper's rig: 800 W)."""
        return self.nodes * self.node_peak_w

    @property
    def budget_w(self) -> float:
        """The enforced power budget."""
        return self.budget_fraction * self.nameplate_w

    def to_datacenter_config(self) -> DataCenterConfig:
        """Express the mini rack as a one-rack data-center configuration."""
        battery_wh = self.nameplate_w * self.battery_autonomy_s / 3600.0
        return DataCenterConfig(
            cluster=ClusterConfig(
                racks=1,
                rack=RackConfig(
                    servers=self.nodes,
                    server=ServerConfig(
                        idle_w=self.node_idle_w, peak_w=self.node_peak_w
                    ),
                    battery=BatteryConfig(
                        capacity_wh=battery_wh,
                        max_discharge_w=2.0 * self.nameplate_w,
                        max_charge_w=0.1 * self.nameplate_w,
                    ),
                    breaker=BreakerConfig(),
                ),
                pdu_budget_fraction=self.budget_fraction,
                rack_soft_limit_fraction=self.budget_fraction,
            ),
            supercap=SupercapConfig(capacity_wh=0.2, max_power_w=800.0),
        )

    def normal_load_trace(
        self,
        duration_s: float,
        dt: float,
        seed: "int | None" = None,
    ) -> UtilizationTrace:
        """Benign background load: AR(1) wander around the mean."""
        if duration_s <= 0.0 or dt <= 0.0:
            raise ConfigError("duration and dt must be positive")
        rng = child_rng(seed, "testbed-load")
        steps = int(round(duration_s / dt))
        phi = 0.98
        noise = np.zeros((steps, self.nodes))
        if self.noise_sigma > 0.0:
            stationary = self.noise_sigma / np.sqrt(1.0 - phi * phi)
            noise[0] = rng.normal(0.0, stationary, self.nodes)
            shocks = rng.normal(0.0, self.noise_sigma, (steps, self.nodes))
            for i in range(1, steps):
                noise[i] = phi * noise[i - 1] + shocks[i]
        matrix = np.clip(self.normal_utilisation + noise, 0.0, 1.0)
        return UtilizationTrace(matrix, interval_s=dt)


class TestbedPlatform:
    """The assembled mini rack: power model plus waveform synthesis.

    Provides the raw power waveforms the paper's testbed figures are made
    of; the full closed-loop behaviour is available by feeding
    :meth:`TestbedConfig.to_datacenter_config` into
    :class:`~repro.sim.datacenter.DataCenterSimulation`.
    """

    def __init__(self, config: TestbedConfig = TestbedConfig()) -> None:
        self.config = config

    def rack_power_waveform(
        self,
        utilisation: np.ndarray,
    ) -> np.ndarray:
        """Total rack power for a ``(steps, nodes)`` utilisation matrix."""
        util = np.asarray(utilisation, dtype=float)
        if util.ndim != 2 or util.shape[1] != self.config.nodes:
            raise ConfigError(
                f"need a (steps, {self.config.nodes}) utilisation matrix"
            )
        cfg = self.config
        per_node = cfg.node_idle_w + np.clip(util, 0.0, 1.0) * (
            cfg.node_peak_w - cfg.node_idle_w
        )
        return per_node.sum(axis=1)

    def attack_waveform(
        self,
        kind: VirusKind,
        attacker_nodes: int,
        spikes: "SpikeTrainConfig | None",
        duration_s: float,
        dt: float,
        seed: "int | None" = None,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Synthesize (normal-only, with-attack) rack power waveforms.

        Args:
            kind: Virus benchmark class.
            attacker_nodes: How many of the rack's nodes run the virus.
            spikes: Phase-II train; ``None`` runs the sustained Phase-I
                form instead.
            duration_s: Waveform length.
            dt: Sample period (the paper's precision meter samples far
                faster than anything in the control plane).

        Returns:
            Two arrays of rack power in watts, one without and one with
            the malicious load.
        """
        if not 0 < attacker_nodes < self.config.nodes:
            raise ConfigError(
                "attacker nodes must leave at least one benign node"
            )
        base = self.config.normal_load_trace(duration_s, dt, seed=seed)
        util = base.matrix.copy()
        profile = profile_for(kind)
        steps = util.shape[0]
        if spikes is None:
            overlay = np.full(steps, profile.sustained_util)
        else:
            train = SpikeTrain(spikes, profile, start_s=0.0, seed=seed)
            overlay = train.waveform(duration_s, dt)
        with_attack = util.copy()
        for node in range(attacker_nodes):
            with_attack[:, node] = np.maximum(
                with_attack[:, node], overlay
            )
        return (
            self.rack_power_waveform(util),
            self.rack_power_waveform(with_attack),
        )
