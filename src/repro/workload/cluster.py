"""Cluster model: machines -> racks -> electrical power.

Binds the workload view (per-machine CPU utilisation) to the electrical
view (per-rack power demand) using the server power model. Machines are
assigned to racks in order — machine ``m`` lives in rack
``m // servers_per_rack`` — matching the paper's 22 racks x 10 servers
hosting the ~220-machine Google trace.

The model also owns the server *availability* state the defenses
manipulate: DVFS-capped servers draw capped power and lose throughput;
shed (sleeping) servers draw a small sleep power and deliver nothing;
servers behind a tripped rack breaker are down entirely.
"""

from __future__ import annotations

import numpy as np

from ..config import ClusterConfig
from ..errors import ConfigError
from ..power.server import ServerPowerModel

#: Power drawn by a server in deep sleep / hibernation, as a fraction of
#: its idle power. S4-style states park well below active idle.
SLEEP_POWER_FRACTION = 0.10


class ClusterModel:
    """Maps per-machine utilisation to per-rack power and throughput.

    Args:
        config: Cluster layout and server power parameters.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self._config = config
        self._server_model = ServerPowerModel(config.rack.server)
        self._servers = config.total_servers
        self._racks = config.racks
        self._per_rack = config.rack.servers
        self._rack_of = np.arange(self._servers) // self._per_rack

    # ------------------------------------------------------------------ #
    # Layout                                                              #
    # ------------------------------------------------------------------ #

    @property
    def config(self) -> ClusterConfig:
        """The cluster configuration."""
        return self._config

    @property
    def servers(self) -> int:
        """Total machine count."""
        return self._servers

    @property
    def racks(self) -> int:
        """Rack count."""
        return self._racks

    @property
    def server_model(self) -> ServerPowerModel:
        """The shared per-server power model."""
        return self._server_model

    def rack_of(self, machine_id: int) -> int:
        """Rack hosting ``machine_id``."""
        if not 0 <= machine_id < self._servers:
            raise ConfigError(
                f"machine {machine_id} outside cluster of {self._servers}"
            )
        return int(self._rack_of[machine_id])

    def machines_in_rack(self, rack_id: int) -> np.ndarray:
        """Machine ids hosted by ``rack_id``."""
        if not 0 <= rack_id < self._racks:
            raise ConfigError(f"rack {rack_id} outside cluster of {self._racks}")
        return np.nonzero(self._rack_of == rack_id)[0]

    def _check_vector(self, name: str, vector: np.ndarray) -> np.ndarray:
        array = np.asarray(vector)
        if array.shape != (self._servers,):
            raise ConfigError(
                f"{name} must have shape ({self._servers},), got {array.shape}"
            )
        return array

    # ------------------------------------------------------------------ #
    # Power                                                               #
    # ------------------------------------------------------------------ #

    def server_power(
        self,
        utilisation: np.ndarray,
        capped: "np.ndarray | None" = None,
        asleep: "np.ndarray | None" = None,
        down_racks: "list[int] | None" = None,
    ) -> np.ndarray:
        """Per-server electrical power for the given state.

        Args:
            utilisation: Per-machine CPU utilisation in [0, 1].
            capped: Boolean mask of DVFS-capped servers.
            asleep: Boolean mask of shed (sleeping) servers.
            down_racks: Racks whose breaker is open — their servers draw
                nothing.
        """
        u = np.clip(self._check_vector("utilisation", utilisation), 0.0, 1.0)
        power = np.asarray(self._server_model.power(u), dtype=float)
        # All-false masks leave the power untouched; skipping them saves
        # the where/astype traffic on quiet ticks.
        if capped is not None:
            capped = self._check_vector("capped", capped)
            if capped.any():
                power = np.where(
                    capped.astype(bool),
                    np.asarray(self._server_model.capped_power(u)),
                    power,
                )
        if asleep is not None:
            asleep = self._check_vector("asleep", asleep)
            if asleep.any():
                sleep_w = self._server_model.idle_w * SLEEP_POWER_FRACTION
                power = np.where(asleep.astype(bool), sleep_w, power)
        if down_racks:
            down_mask = np.isin(self._rack_of, np.asarray(down_racks, dtype=int))
            power = np.where(down_mask, 0.0, power)
        return power

    def rack_power(
        self,
        utilisation: np.ndarray,
        capped: "np.ndarray | None" = None,
        asleep: "np.ndarray | None" = None,
        down_racks: "list[int] | None" = None,
    ) -> np.ndarray:
        """Per-rack power demand ``p_i``, summed over the rack's servers."""
        power = self.server_power(utilisation, capped, asleep, down_racks)
        return np.bincount(self._rack_of, weights=power, minlength=self._racks)

    def sum_to_racks(self, per_server: np.ndarray) -> np.ndarray:
        """Sum any per-server quantity into per-rack totals."""
        values = self._check_vector("per_server", per_server)
        return np.bincount(
            self._rack_of, weights=values.astype(float), minlength=self._racks
        )

    # ------------------------------------------------------------------ #
    # Throughput                                                          #
    # ------------------------------------------------------------------ #

    def throughput(
        self,
        utilisation: np.ndarray,
        capped: "np.ndarray | None" = None,
        asleep: "np.ndarray | None" = None,
        down_racks: "list[int] | None" = None,
    ) -> float:
        """Delivered work this instant, in machine-utilisation units.

        Healthy servers deliver their utilisation; capped servers lose the
        DVFS penalty; sleeping and down servers deliver nothing. Summed
        over the cluster — this is the integrand of the paper's Fig. 16
        performance metric.
        """
        u = np.clip(self._check_vector("utilisation", utilisation), 0.0, 1.0)
        return self._delivered_from_clipped(u, capped, asleep, down_racks)

    def _delivered_from_clipped(
        self,
        u: np.ndarray,
        capped: "np.ndarray | None",
        asleep: "np.ndarray | None",
        down_racks: "list[int] | None",
    ) -> float:
        """Delivered work from already-clipped utilisation."""
        return float(
            np.sum(self.delivered_vector(u, capped, asleep, down_racks))
        )

    def delivered_vector(
        self,
        u: np.ndarray,
        capped: "np.ndarray | None" = None,
        asleep: "np.ndarray | None" = None,
        down_racks: "list[int] | None" = None,
    ) -> np.ndarray:
        """Per-server delivered work from already-clipped utilisation.

        The cohort backend sums this per cell; :meth:`throughput` and
        :meth:`work_snapshot` sum it over the whole fleet.
        """
        delivered = u.astype(float)
        if capped is not None:
            capped = self._check_vector("capped", capped)
            if capped.any():
                penalty = (
                    1.0 - self._config.rack.server.dvfs_throughput_penalty
                )
                delivered = np.where(
                    capped.astype(bool), delivered * penalty, delivered
                )
        if asleep is not None:
            asleep = self._check_vector("asleep", asleep)
            if asleep.any():
                delivered = np.where(asleep.astype(bool), 0.0, delivered)
        if down_racks:
            down_mask = np.isin(self._rack_of, np.asarray(down_racks, dtype=int))
            delivered = np.where(down_mask, 0.0, delivered)
        return delivered

    def work_snapshot(
        self,
        utilisation: np.ndarray,
        capped: "np.ndarray | None" = None,
        asleep: "np.ndarray | None" = None,
        down_racks: "list[int] | None" = None,
    ) -> "tuple[float, float]":
        """``(delivered, demanded)`` work this instant, sharing the clip.

        Equivalent to calling :meth:`throughput` and
        :meth:`demanded_throughput` but clips the utilisation once — the
        per-step accounting path.
        """
        u = np.clip(self._check_vector("utilisation", utilisation), 0.0, 1.0)
        demanded = float(np.sum(u))
        delivered = self._delivered_from_clipped(u, capped, asleep, down_racks)
        return delivered, demanded

    def demanded_throughput(self, utilisation: np.ndarray) -> float:
        """Work demanded this instant — the throughput denominator."""
        u = np.clip(self._check_vector("utilisation", utilisation), 0.0, 1.0)
        return float(np.sum(u))
