"""Parser for the 2010 Google cluster trace format (paper §5, [21]).

The paper's evaluation drives its simulator with the public
``googleclusterdata`` trace from May 2010: one month of task records from a
cluster of about 220 machines, sampled every five minutes. Each record
carries::

    time  job_id  task_index  machine_id  cpu_rate  [memory ...]

where ``time`` is the interval timestamp (multiples of 300 s), ``cpu_rate``
is normalised core usage, and extra columns are ignored. Fields may be
separated by whitespace or commas; ``#`` starts a comment.

Because the trace records *per-interval usage* rather than task lifetimes,
:func:`load_usage_records` is the primary entry point — it accumulates the
CPU rate per (timestamp, machine) cell directly, which is exactly the
paper's processing step. :func:`load_tasks` additionally reconstructs task
intervals (one task per contiguous run of records) for workloads that need
the job/task view.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass

import numpy as np

from ..errors import TraceFormatError
from ..units import TRACE_INTERVAL_S
from .task import Task
from .trace import UtilizationTrace


@dataclass(frozen=True)
class UsageRecord:
    """One parsed trace line.

    Attributes:
        time_s: Interval timestamp in seconds.
        job_id: Owning job.
        task_index: Task index within the job.
        machine_id: Machine the usage occurred on.
        cpu_rate: Normalised CPU usage in ``[0, 1]``.
    """

    time_s: float
    job_id: int
    task_index: int
    machine_id: int
    cpu_rate: float


def _split_fields(line: str) -> "list[str]":
    """Split a record line on commas or arbitrary whitespace."""
    if "," in line:
        return [f.strip() for f in line.split(",")]
    return line.split()


def parse_line(line: str, lineno: int = 0) -> "UsageRecord | None":
    """Parse one line; returns ``None`` for blanks and comments.

    Raises:
        TraceFormatError: if the line has too few fields or a field fails
            to parse; the message includes the line number.
    """
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = _split_fields(stripped)
    if len(fields) < 5:
        raise TraceFormatError(
            f"line {lineno}: expected >= 5 fields, got {len(fields)}"
        )
    try:
        time_s = float(fields[0])
        job_id = int(fields[1])
        task_index = int(fields[2])
        machine_id = int(fields[3])
        cpu_rate = float(fields[4])
    except ValueError as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc
    if time_s < 0.0:
        raise TraceFormatError(f"line {lineno}: negative timestamp {time_s}")
    if machine_id < 0:
        raise TraceFormatError(f"line {lineno}: negative machine id")
    if not 0.0 <= cpu_rate <= 1.0 + 1e-9:
        raise TraceFormatError(
            f"line {lineno}: cpu rate {cpu_rate} outside [0, 1]"
        )
    return UsageRecord(
        time_s=time_s,
        job_id=job_id,
        task_index=task_index,
        machine_id=machine_id,
        cpu_rate=min(cpu_rate, 1.0),
    )


def load_usage_records(source: "str | os.PathLike | io.TextIOBase"
                       ) -> "list[UsageRecord]":
    """Parse every record from a path or open text stream."""
    if isinstance(source, io.TextIOBase):
        lines = source
        records = [
            rec
            for lineno, line in enumerate(lines, start=1)
            if (rec := parse_line(line, lineno)) is not None
        ]
        return records
    with open(source, "r", encoding="utf-8") as handle:
        return load_usage_records(handle)


def records_to_trace(
    records: "list[UsageRecord]",
    machines: "int | None" = None,
    interval_s: float = TRACE_INTERVAL_S,
) -> UtilizationTrace:
    """Accumulate usage records into a machine-utilisation trace.

    This mirrors the paper's processing: "calculate the total CPU power
    demand belonging to a given machine at the same timestamp". Multiple
    records for one (timestamp, machine) cell add up and are clipped at
    full utilisation.

    Args:
        records: Parsed records.
        machines: Number of machine columns; defaults to
            ``max(machine_id) + 1``.
        interval_s: Trace sampling interval.
    """
    if not records:
        raise TraceFormatError("no records to convert")
    max_machine = max(r.machine_id for r in records)
    cols = machines if machines is not None else max_machine + 1
    if max_machine >= cols:
        raise TraceFormatError(
            f"machine id {max_machine} >= machine count {cols}"
        )
    steps = int(max(r.time_s for r in records) // interval_s) + 1
    matrix = np.zeros((steps, cols))
    for rec in records:
        row = int(rec.time_s // interval_s)
        matrix[row, rec.machine_id] += rec.cpu_rate
    return UtilizationTrace(np.clip(matrix, 0.0, 1.0), interval_s=interval_s)


def load_trace(
    source: "str | os.PathLike | io.TextIOBase",
    machines: "int | None" = None,
    interval_s: float = TRACE_INTERVAL_S,
) -> UtilizationTrace:
    """Parse a Google-format trace file straight into a utilisation trace."""
    return records_to_trace(
        load_usage_records(source), machines=machines, interval_s=interval_s
    )


def load_tasks(
    source: "str | os.PathLike | io.TextIOBase",
    interval_s: float = TRACE_INTERVAL_S,
) -> "list[Task]":
    """Reconstruct task intervals from per-interval usage records.

    A task's records at consecutive timestamps are merged into one
    :class:`~repro.workload.task.Task` spanning the run, with the mean CPU
    rate. A gap, or a machine change, starts a new task interval.
    """
    records = load_usage_records(source)
    by_task: dict[tuple[int, int], list[UsageRecord]] = {}
    for rec in records:
        by_task.setdefault((rec.job_id, rec.task_index), []).append(rec)
    tasks: list[Task] = []
    for (job_id, task_index), recs in by_task.items():
        recs.sort(key=lambda r: r.time_s)
        run: list[UsageRecord] = []
        for rec in recs:
            contiguous = (
                run
                and rec.machine_id == run[-1].machine_id
                and abs(rec.time_s - run[-1].time_s - interval_s) < 1e-6
            )
            if contiguous:
                run.append(rec)
            else:
                if run:
                    tasks.append(_run_to_task(job_id, task_index, run, interval_s))
                run = [rec]
        if run:
            tasks.append(_run_to_task(job_id, task_index, run, interval_s))
    tasks.sort(key=lambda t: (t.start_s, t.job_id, t.task_index))
    return tasks


def _run_to_task(
    job_id: int,
    task_index: int,
    run: "list[UsageRecord]",
    interval_s: float,
) -> Task:
    """Merge one contiguous record run into a task interval."""
    mean_rate = float(np.mean([r.cpu_rate for r in run]))
    return Task(
        job_id=job_id,
        task_index=task_index,
        start_s=run[0].time_s,
        end_s=run[-1].time_s + interval_s,
        cpu_rate=mean_rate,
        machine_id=run[0].machine_id,
    )
