"""Job scheduler: dispatch tasks onto machines.

The paper's simulation platform includes a job scheduler that places trace
tasks onto machines ("a set of resource requirements used for dispatching
the tasks onto machines"). This module implements that dispatch layer for
tasks that arrive unplaced (e.g. from the synthetic job generator):
a least-loaded (worst-fit) policy with capacity admission control, which is
the standard baseline for CPU-rate placement.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import TraceFormatError
from .task import Task


@dataclass
class ScheduleResult:
    """Outcome of a scheduling run.

    Attributes:
        placed: Tasks with machine assignments, in start-time order.
        rejected: Tasks that no machine could host at their start time.
    """

    placed: "list[Task]" = field(default_factory=list)
    rejected: "list[Task]" = field(default_factory=list)

    @property
    def admission_rate(self) -> float:
        """Fraction of offered tasks that were placed."""
        total = len(self.placed) + len(self.rejected)
        return len(self.placed) / total if total else 1.0


class LeastLoadedScheduler:
    """Worst-fit scheduler over machine CPU capacity.

    Tasks are processed in start-time order. At each task start, finished
    tasks release their capacity; the task then goes to the machine with
    the most free CPU, provided it fits (free capacity >= ``cpu_rate``).
    Tasks that fit nowhere are rejected rather than queued — the Google
    trace records *running* tasks, so admission is the right abstraction.

    Args:
        machines: Number of machines available.
        capacity: CPU capacity per machine (1.0 = one machine's worth).
    """

    def __init__(self, machines: int, capacity: float = 1.0) -> None:
        if machines <= 0:
            raise TraceFormatError("need at least one machine")
        if capacity <= 0.0:
            raise TraceFormatError("capacity must be positive")
        self._machines = machines
        self._capacity = capacity

    @property
    def machines(self) -> int:
        """Number of machines this scheduler places onto."""
        return self._machines

    def schedule(self, tasks: "list[Task]") -> ScheduleResult:
        """Place ``tasks``; already-placed tasks keep their machine.

        Pre-placed tasks still consume capacity on their machine (and are
        rejected if their machine id is out of range), so mixed traces —
        real placed records plus synthetic unplaced load — work.
        """
        result = ScheduleResult()
        load = [0.0] * self._machines
        # Min-heap of (end_s, machine_id, cpu_rate) for running tasks.
        running: list[tuple[float, int, float]] = []
        for task in sorted(tasks, key=lambda t: (t.start_s, t.job_id, t.task_index)):
            while running and running[0][0] <= task.start_s:
                _, machine, rate = heapq.heappop(running)
                load[machine] -= rate
            if task.placed:
                machine_id = task.machine_id
                assert machine_id is not None
                if machine_id >= self._machines:
                    result.rejected.append(task)
                    continue
                placed_task = task
            else:
                machine_id = self._pick_machine(load, task.cpu_rate)
                if machine_id is None:
                    result.rejected.append(task)
                    continue
                placed_task = task.on_machine(machine_id)
            load[machine_id] += placed_task.cpu_rate
            heapq.heappush(
                running, (placed_task.end_s, machine_id, placed_task.cpu_rate)
            )
            result.placed.append(placed_task)
        return result

    def _pick_machine(self, load: "list[float]", cpu_rate: float) -> "int | None":
        """Least-loaded machine with room for ``cpu_rate``, else ``None``."""
        best: int | None = None
        best_load = float("inf")
        for machine_id, current in enumerate(load):
            if current + cpu_rate <= self._capacity + 1e-9 and current < best_load:
                best = machine_id
                best_load = current
        return best
