"""Workload-trace statistics and calibration validation.

The synthetic generator stands in for the public Google trace, so its
output must actually carry the statistical features the experiments rely
on. This module computes those features for any
:class:`~repro.workload.trace.UtilizationTrace` — real or synthetic — and
checks them against the calibration envelope documented in DESIGN.md.

Use it to validate a replacement trace before pointing the experiment
harness at it: if :func:`validate_against` passes, the harness's attack
timing and budget calibration remain meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceFormatError
from ..units import SECONDS_PER_DAY
from .trace import UtilizationTrace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a machine-utilisation trace.

    Attributes:
        mean: Grand mean utilisation.
        cluster_std: Std-dev of the cluster-mean series over time.
        machine_spread: Mean across-time std-dev between machines.
        diurnal_strength: Amplitude of the 1/day Fourier component of the
            cluster-mean series, as a fraction of the mean.
        peak_to_mean: Cluster-mean peak over grand mean.
        lag1_autocorr: Lag-1 autocorrelation of the cluster-mean series
            (persistence; real workloads are strongly autocorrelated).
    """

    mean: float
    cluster_std: float
    machine_spread: float
    diurnal_strength: float
    peak_to_mean: float
    lag1_autocorr: float


def compute_stats(trace: UtilizationTrace) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``."""
    matrix = trace.matrix
    cluster_mean = matrix.mean(axis=1)
    grand_mean = float(cluster_mean.mean())
    if trace.timestamps < 4:
        raise TraceFormatError("trace too short for statistics")
    centred = cluster_mean - grand_mean
    # Amplitude of the one-cycle-per-day Fourier component.
    t = np.arange(trace.timestamps) * trace.interval_s
    omega = 2.0 * np.pi / SECONDS_PER_DAY
    cos_c = 2.0 * float(np.mean(centred * np.cos(omega * t)))
    sin_c = 2.0 * float(np.mean(centred * np.sin(omega * t)))
    diurnal_amp = float(np.hypot(cos_c, sin_c))
    denominator = float(np.sum(centred[:-1] ** 2))
    if denominator > 0.0:
        lag1 = float(np.sum(centred[:-1] * centred[1:]) / denominator)
    else:
        lag1 = 0.0
    return TraceStats(
        mean=grand_mean,
        cluster_std=float(np.std(cluster_mean)),
        machine_spread=float(np.mean(np.std(matrix, axis=1))),
        diurnal_strength=diurnal_amp / grand_mean if grand_mean else 0.0,
        peak_to_mean=(
            float(cluster_mean.max()) / grand_mean if grand_mean else 0.0
        ),
        lag1_autocorr=lag1,
    )


@dataclass(frozen=True)
class CalibrationEnvelope:
    """Acceptance bounds for a trace to drive the calibrated experiments.

    Defaults describe the Google-trace-like regime the headline setup was
    tuned for (DESIGN.md §8): mid-range mean utilisation, a visible
    diurnal cycle, per-machine diversity, and strong persistence.
    """

    mean_range: tuple[float, float] = (0.30, 0.60)
    min_diurnal_strength: float = 0.05
    min_machine_spread: float = 0.02
    max_peak_to_mean: float = 1.8
    min_lag1_autocorr: float = 0.5


def validate_against(
    trace: UtilizationTrace,
    envelope: CalibrationEnvelope = CalibrationEnvelope(),
) -> "list[str]":
    """Check ``trace`` against ``envelope``; return violation messages.

    An empty list means the trace fits the calibrated regime. Violations
    are returned rather than raised so callers can decide whether a
    mismatch matters for their experiment.
    """
    stats = compute_stats(trace)
    problems: list[str] = []
    low, high = envelope.mean_range
    if not low <= stats.mean <= high:
        problems.append(
            f"mean utilisation {stats.mean:.2f} outside [{low}, {high}] — "
            "re-derive the PDU budget fraction for this trace"
        )
    if stats.diurnal_strength < envelope.min_diurnal_strength:
        problems.append(
            f"diurnal strength {stats.diurnal_strength:.3f} below "
            f"{envelope.min_diurnal_strength} — the attacker's "
            "'best time to strike' heuristic loses meaning"
        )
    if stats.machine_spread < envelope.min_machine_spread:
        problems.append(
            f"machine spread {stats.machine_spread:.3f} below "
            f"{envelope.min_machine_spread} — no uneven battery usage "
            "(paper Fig. 5) will emerge"
        )
    if stats.peak_to_mean > envelope.max_peak_to_mean:
        problems.append(
            f"peak-to-mean {stats.peak_to_mean:.2f} above "
            f"{envelope.max_peak_to_mean} — baseline operation would trip "
            "breakers without any attack"
        )
    if stats.lag1_autocorr < envelope.min_lag1_autocorr:
        problems.append(
            f"lag-1 autocorrelation {stats.lag1_autocorr:.2f} below "
            f"{envelope.min_lag1_autocorr} — load lacks the persistence "
            "real clusters show"
        )
    return problems
