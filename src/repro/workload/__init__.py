"""Workload substrate: traces, Google-trace parsing, synthesis, scheduling."""

from .cluster import ClusterModel
from .google import (
    UsageRecord,
    load_tasks,
    load_trace,
    load_usage_records,
    parse_line,
    records_to_trace,
)
from .scheduler import LeastLoadedScheduler, ScheduleResult
from .synthetic import (
    SyntheticJobConfig,
    SyntheticTraceConfig,
    generate_jobs,
    generate_trace,
    google_like_trace,
    surge_profile,
)
from .task import Job, Task, group_into_jobs
from .validation import (
    CalibrationEnvelope,
    TraceStats,
    compute_stats,
    validate_against,
)
from .trace import TraceSlice, UtilizationTrace

__all__ = [
    "CalibrationEnvelope",
    "ClusterModel",
    "Job",
    "LeastLoadedScheduler",
    "ScheduleResult",
    "SyntheticJobConfig",
    "SyntheticTraceConfig",
    "Task",
    "TraceSlice",
    "TraceStats",
    "UsageRecord",
    "UtilizationTrace",
    "generate_jobs",
    "generate_trace",
    "google_like_trace",
    "group_into_jobs",
    "load_tasks",
    "load_trace",
    "load_usage_records",
    "parse_line",
    "records_to_trace",
    "surge_profile",
    "compute_stats",
    "validate_against",
]
