"""Task and job records — the Google cluster-trace schema (paper §5).

"Work arrives at the cluster in the form of jobs. A job is comprised of one
or more tasks, each of which is accompanied by a set of resource
requirements used for dispatching the tasks onto machines. Every line in
this trace includes start time, end time, machine ID, and CPU rate of the
task."

These records are the interchange format between the trace parser, the
synthetic generator, and the job scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TraceFormatError


@dataclass(frozen=True)
class Task:
    """One scheduled task interval.

    Attributes:
        job_id: Identifier of the owning job.
        task_index: Index of this task within its job.
        start_s: Task start time (seconds from trace origin).
        end_s: Task end time; must be strictly after ``start_s``.
        machine_id: Machine the task ran on, or ``None`` if not yet placed
            (the scheduler will choose).
        cpu_rate: CPU demand as a fraction of one machine in ``[0, 1]``.
    """

    job_id: int
    task_index: int
    start_s: float
    end_s: float
    cpu_rate: float
    machine_id: "int | None" = None

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise TraceFormatError(
                f"task {self.job_id}/{self.task_index}: end {self.end_s} "
                f"not after start {self.start_s}"
            )
        if not 0.0 <= self.cpu_rate <= 1.0:
            raise TraceFormatError(
                f"task {self.job_id}/{self.task_index}: cpu rate "
                f"{self.cpu_rate} outside [0, 1]"
            )
        if self.machine_id is not None and self.machine_id < 0:
            raise TraceFormatError("machine id must be non-negative")

    @property
    def duration_s(self) -> float:
        """Task duration in seconds."""
        return self.end_s - self.start_s

    @property
    def placed(self) -> bool:
        """True once the task has a machine assignment."""
        return self.machine_id is not None

    def on_machine(self, machine_id: int) -> "Task":
        """Return a copy of this task placed on ``machine_id``."""
        return Task(
            job_id=self.job_id,
            task_index=self.task_index,
            start_s=self.start_s,
            end_s=self.end_s,
            cpu_rate=self.cpu_rate,
            machine_id=machine_id,
        )


@dataclass
class Job:
    """A job: a set of tasks sharing a ``job_id``.

    Attributes:
        job_id: The job identifier.
        tasks: The job's tasks; task indices must be unique within the job.
    """

    job_id: int
    tasks: list[Task] = field(default_factory=list)

    def __post_init__(self) -> None:
        indices = [t.task_index for t in self.tasks]
        if len(indices) != len(set(indices)):
            raise TraceFormatError(f"job {self.job_id}: duplicate task indices")
        for t in self.tasks:
            if t.job_id != self.job_id:
                raise TraceFormatError(
                    f"job {self.job_id}: task belongs to job {t.job_id}"
                )

    def add(self, task: Task) -> None:
        """Append a task, enforcing id consistency and index uniqueness."""
        if task.job_id != self.job_id:
            raise TraceFormatError(
                f"job {self.job_id}: task belongs to job {task.job_id}"
            )
        if any(t.task_index == task.task_index for t in self.tasks):
            raise TraceFormatError(
                f"job {self.job_id}: duplicate task index {task.task_index}"
            )
        self.tasks.append(task)

    @property
    def start_s(self) -> float:
        """Earliest task start."""
        if not self.tasks:
            raise TraceFormatError(f"job {self.job_id} has no tasks")
        return min(t.start_s for t in self.tasks)

    @property
    def end_s(self) -> float:
        """Latest task end."""
        if not self.tasks:
            raise TraceFormatError(f"job {self.job_id} has no tasks")
        return max(t.end_s for t in self.tasks)

    @property
    def total_cpu_seconds(self) -> float:
        """Aggregate CPU demand of the job, in machine-seconds."""
        return sum(t.cpu_rate * t.duration_s for t in self.tasks)


def group_into_jobs(tasks: "list[Task]") -> "list[Job]":
    """Group a flat task list into jobs, ordered by first appearance."""
    jobs: dict[int, Job] = {}
    for task in tasks:
        job = jobs.get(task.job_id)
        if job is None:
            job = Job(job_id=task.job_id)
            jobs[task.job_id] = job
        job.add(task)
    return list(jobs.values())
