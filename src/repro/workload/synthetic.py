"""Calibrated synthetic cluster-trace generator.

The paper drives its simulator with the public Google trace from May 2010
(~220 machines, one month, 5-minute samples). That file is not shipped
here, so this module generates statistically comparable workloads with the
features the experiments depend on:

* a **diurnal cycle** — data-center load swings daily;
* **per-machine AR(1) noise** — machines wander independently around the
  cluster trend, producing the *uneven battery usage* of paper Fig. 5;
* **heavy-tailed bursts** — occasional per-machine demand spikes;
* optional **cluster-wide surges** — the periodic events of paper Fig. 14
  that create many vulnerable racks at once.

Two views are offered: :func:`generate_trace` produces the machine-level
utilisation matrix the simulator consumes (the paper's post-processed
form), and :func:`generate_jobs` produces job/task records that exercise
the scheduler path end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..rng import child_rng
from ..units import SECONDS_PER_DAY, TRACE_INTERVAL_S, days
from .task import Task
from .trace import UtilizationTrace


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Shape parameters of the generated workload.

    Defaults target the Google-trace statistics the paper relies on:
    mean utilisation around 45 % with a visible diurnal swing and a long
    but bounded upper tail.

    Attributes:
        machines: Number of machine columns (paper: ~220).
        duration_s: Trace length (paper: one month).
        interval_s: Sampling interval (paper: 5 minutes).
        mean_utilisation: Long-run cluster mean in (0, 1).
        diurnal_amplitude: Half-swing of the daily cycle.
        noise_sigma: Innovation std-dev of the per-machine AR(1) process.
        noise_phi: AR(1) persistence in [0, 1).
        burst_rate_per_day: Expected per-machine bursts per day.
        burst_height: Mean extra utilisation during a burst.
        burst_duration_s: Mean burst length.
        surge_period_s: Period of cluster-wide surges; 0 disables them.
        surge_height: Extra utilisation applied cluster-wide per surge.
        surge_duration_s: Length of each cluster-wide surge.
    """

    machines: int = 220
    duration_s: float = days(30)
    interval_s: float = TRACE_INTERVAL_S
    mean_utilisation: float = 0.45
    diurnal_amplitude: float = 0.12
    noise_sigma: float = 0.05
    noise_phi: float = 0.90
    burst_rate_per_day: float = 1.5
    burst_height: float = 0.12
    burst_duration_s: float = 1800.0
    surge_period_s: float = 0.0
    surge_height: float = 0.25
    surge_duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.machines <= 0:
            raise ConfigError("need at least one machine")
        if self.duration_s < self.interval_s:
            raise ConfigError("duration must cover at least one interval")
        if self.interval_s <= 0.0:
            raise ConfigError("interval must be positive")
        if not 0.0 < self.mean_utilisation < 1.0:
            raise ConfigError("mean utilisation must be in (0, 1)")
        if self.diurnal_amplitude < 0.0:
            raise ConfigError("diurnal amplitude must be non-negative")
        if self.noise_sigma < 0.0:
            raise ConfigError("noise sigma must be non-negative")
        if not 0.0 <= self.noise_phi < 1.0:
            raise ConfigError("AR(1) phi must be in [0, 1)")
        if self.burst_rate_per_day < 0.0 or self.burst_height < 0.0:
            raise ConfigError("burst parameters must be non-negative")
        if self.burst_duration_s <= 0.0:
            raise ConfigError("burst duration must be positive")
        if self.surge_period_s < 0.0:
            raise ConfigError("surge period must be non-negative")
        if self.surge_period_s and self.surge_period_s < self.surge_duration_s:
            raise ConfigError("surge period must exceed surge duration")

    @property
    def steps(self) -> int:
        """Number of samples in the generated trace."""
        return max(1, int(self.duration_s // self.interval_s))


def generate_trace(
    config: SyntheticTraceConfig, seed: "int | None" = None
) -> UtilizationTrace:
    """Generate a machine-utilisation trace per ``config``.

    Deterministic for a given ``(config, seed)`` pair.
    """
    rng = child_rng(seed, "synthetic-trace")
    steps, machines = config.steps, config.machines
    t = np.arange(steps) * config.interval_s

    # Cluster-wide diurnal trend, phase-shifted so the peak lands in the
    # afternoon of each simulated day.
    phase = 2.0 * math.pi * (t / SECONDS_PER_DAY - 0.25)
    trend = config.mean_utilisation + config.diurnal_amplitude * np.sin(phase)

    # Per-machine AR(1) deviations, stationary initialisation.
    sigma, phi = config.noise_sigma, config.noise_phi
    noise = np.zeros((steps, machines))
    if sigma > 0.0:
        stationary = sigma / math.sqrt(1.0 - phi * phi)
        noise[0] = rng.normal(0.0, stationary, machines)
        shocks = rng.normal(0.0, sigma, (steps, machines))
        for i in range(1, steps):
            noise[i] = phi * noise[i - 1] + shocks[i]

    matrix = trend[:, None] + noise
    _add_bursts(matrix, config, rng)
    if config.surge_period_s > 0.0:
        matrix += surge_profile(config)[:, None]
    return UtilizationTrace(
        np.clip(matrix, 0.0, 1.0), interval_s=config.interval_s
    )


def _add_bursts(
    matrix: np.ndarray, config: SyntheticTraceConfig, rng: np.random.Generator
) -> None:
    """Overlay heavy-tailed per-machine bursts onto ``matrix`` in place."""
    if config.burst_rate_per_day <= 0.0 or config.burst_height <= 0.0:
        return
    steps, machines = matrix.shape
    trace_days = steps * config.interval_s / SECONDS_PER_DAY
    for m in range(machines):
        count = rng.poisson(config.burst_rate_per_day * trace_days)
        for _ in range(count):
            start = rng.integers(0, steps)
            length = max(
                1,
                int(rng.exponential(config.burst_duration_s) // config.interval_s),
            )
            height = rng.exponential(config.burst_height)
            matrix[start : start + length, m] += height


def surge_profile(config: SyntheticTraceConfig) -> np.ndarray:
    """The cluster-wide surge waveform as a per-timestamp vector.

    Exposed separately so experiments (paper Fig. 14) can inject the same
    surge onto an existing trace via
    :meth:`~repro.workload.trace.UtilizationTrace.with_added`.
    """
    steps = config.steps
    profile = np.zeros(steps)
    if config.surge_period_s <= 0.0:
        return profile
    t = np.arange(steps) * config.interval_s
    in_surge = (t % config.surge_period_s) < config.surge_duration_s
    profile[in_surge] = config.surge_height
    return profile


@dataclass(frozen=True)
class SyntheticJobConfig:
    """Parameters of the job/task-level generator.

    Attributes:
        machines: Cluster size for placement bounds.
        duration_s: Span of job arrivals.
        arrival_rate_per_hour: Poisson job arrival rate.
        tasks_per_job_mean: Geometric mean of tasks per job.
        task_duration_mean_s: Log-normal mean task duration.
        task_duration_sigma: Log-normal shape of task durations.
        cpu_rate_alpha: Beta-distribution alpha of per-task CPU rate.
        cpu_rate_beta: Beta-distribution beta of per-task CPU rate.
    """

    machines: int = 220
    duration_s: float = days(1)
    arrival_rate_per_hour: float = 40.0
    tasks_per_job_mean: float = 4.0
    task_duration_mean_s: float = 3600.0
    task_duration_sigma: float = 1.0
    cpu_rate_alpha: float = 2.0
    cpu_rate_beta: float = 6.0

    def __post_init__(self) -> None:
        if self.machines <= 0:
            raise ConfigError("need at least one machine")
        if self.duration_s <= 0.0:
            raise ConfigError("duration must be positive")
        if self.arrival_rate_per_hour <= 0.0:
            raise ConfigError("arrival rate must be positive")
        if self.tasks_per_job_mean < 1.0:
            raise ConfigError("jobs need at least one task on average")
        if self.task_duration_mean_s <= 0.0 or self.task_duration_sigma <= 0.0:
            raise ConfigError("task duration parameters must be positive")
        if self.cpu_rate_alpha <= 0.0 or self.cpu_rate_beta <= 0.0:
            raise ConfigError("beta distribution parameters must be positive")


def generate_jobs(
    config: SyntheticJobConfig, seed: "int | None" = None
) -> "list[Task]":
    """Generate *unplaced* tasks with realistic arrival structure.

    Jobs arrive by a Poisson process; each spawns a geometric number of
    tasks starting together, with log-normal durations and beta-distributed
    CPU rates. Feed the result to the scheduler for placement.
    """
    rng = child_rng(seed, "synthetic-jobs")
    tasks: list[Task] = []
    mean_gap_s = 3600.0 / config.arrival_rate_per_hour
    now = float(rng.exponential(mean_gap_s))
    job_id = 0
    mu = math.log(config.task_duration_mean_s) - 0.5 * config.task_duration_sigma**2
    while now < config.duration_s:
        n_tasks = 1 + rng.geometric(1.0 / config.tasks_per_job_mean)
        for task_index in range(int(n_tasks)):
            duration = float(
                rng.lognormal(mean=mu, sigma=config.task_duration_sigma)
            )
            duration = max(duration, config.duration_s / 10_000.0)
            cpu = float(rng.beta(config.cpu_rate_alpha, config.cpu_rate_beta))
            tasks.append(
                Task(
                    job_id=job_id,
                    task_index=task_index,
                    start_s=now,
                    end_s=now + duration,
                    cpu_rate=min(cpu, 1.0),
                )
            )
        job_id += 1
        now += float(rng.exponential(mean_gap_s))
    return tasks


def google_like_trace(
    machines: int = 220,
    duration_days: float = 30.0,
    seed: "int | None" = None,
) -> UtilizationTrace:
    """The default stand-in for the paper's Google trace.

    One call produces the month-long, ~220-machine, 5-minute-interval
    workload every headline experiment runs on.
    """
    config = SyntheticTraceConfig(
        machines=machines,
        duration_s=days(duration_days),
    )
    return generate_trace(config, seed=seed)
