"""Machine-utilisation traces: the simulator's workload representation.

A :class:`UtilizationTrace` is a dense ``(timestamps, machines)`` matrix of
CPU utilisation in ``[0, 1]`` at a fixed sampling interval — exactly what
falls out of the paper's processing of the Google trace ("we use machine ID
as the identifier and calculate the total CPU power demand belonging to a
given machine at the same timestamp"). It supports the operations the
experiments need: building from task lists, slicing time windows,
resampling, and per-timestamp iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import TraceFormatError
from .task import Task


@dataclass(frozen=True)
class TraceSlice:
    """One timestamp of a trace.

    Attributes:
        time_s: Sample time (start of the interval).
        utilisation: Per-machine CPU utilisation, shape ``(machines,)``.
    """

    time_s: float
    utilisation: np.ndarray


class UtilizationTrace:
    """A fixed-interval machine-utilisation matrix.

    Args:
        utilisation: Array of shape ``(timestamps, machines)`` in [0, 1].
        interval_s: Sampling interval.
        start_s: Time of the first sample.
    """

    def __init__(
        self,
        utilisation: np.ndarray,
        interval_s: float,
        start_s: float = 0.0,
    ) -> None:
        matrix = np.asarray(utilisation, dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise TraceFormatError("utilisation must be a non-empty 2-D matrix")
        if interval_s <= 0.0:
            raise TraceFormatError("interval must be positive")
        if np.any(matrix < -1e-9) or np.any(matrix > 1.0 + 1e-9):
            raise TraceFormatError("utilisation values must lie in [0, 1]")
        self._matrix = np.clip(matrix, 0.0, 1.0)
        self._interval_s = float(interval_s)
        self._start_s = float(start_s)

    # ------------------------------------------------------------------ #
    # Construction                                                        #
    # ------------------------------------------------------------------ #

    @classmethod
    def from_tasks(
        cls,
        tasks: "list[Task]",
        machines: int,
        interval_s: float,
        duration_s: "float | None" = None,
        clip_overload: bool = True,
    ) -> "UtilizationTrace":
        """Rasterise placed tasks into a utilisation matrix.

        Each task contributes its ``cpu_rate`` to its machine for every
        interval it overlaps, weighted by the overlap fraction.

        Args:
            tasks: Placed tasks (``machine_id`` set on every task).
            machines: Number of machine columns.
            interval_s: Output sampling interval.
            duration_s: Trace length; defaults to the latest task end.
            clip_overload: Clip aggregate demand above 1.0 per machine
                (machines cannot run past full utilisation). When False,
                overload raises instead — useful to catch scheduler bugs.
        """
        if machines <= 0:
            raise TraceFormatError("need at least one machine")
        if not tasks:
            raise TraceFormatError("need at least one task")
        end = duration_s if duration_s is not None else max(t.end_s for t in tasks)
        if end <= 0.0:
            raise TraceFormatError("trace duration must be positive")
        steps = max(1, int(math.ceil(end / interval_s)))
        matrix = np.zeros((steps, machines))
        for task in tasks:
            if task.machine_id is None:
                raise TraceFormatError(
                    f"task {task.job_id}/{task.task_index} is unplaced"
                )
            if task.machine_id >= machines:
                raise TraceFormatError(
                    f"task {task.job_id}/{task.task_index} on machine "
                    f"{task.machine_id} >= {machines}"
                )
            first = int(task.start_s // interval_s)
            last = min(steps - 1, int((task.end_s - 1e-9) // interval_s))
            for idx in range(first, last + 1):
                slot_start = idx * interval_s
                slot_end = slot_start + interval_s
                overlap = min(task.end_s, slot_end) - max(task.start_s, slot_start)
                if overlap > 0.0:
                    matrix[idx, task.machine_id] += (
                        task.cpu_rate * overlap / interval_s
                    )
        if clip_overload:
            matrix = np.clip(matrix, 0.0, 1.0)
        elif np.any(matrix > 1.0 + 1e-9):
            raise TraceFormatError("aggregate task demand exceeds machine capacity")
        return cls(matrix, interval_s=interval_s)

    # ------------------------------------------------------------------ #
    # Properties                                                          #
    # ------------------------------------------------------------------ #

    @property
    def matrix(self) -> np.ndarray:
        """The full ``(timestamps, machines)`` matrix (read-only view)."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    @property
    def timestamps(self) -> int:
        """Number of samples."""
        return self._matrix.shape[0]

    @property
    def machines(self) -> int:
        """Number of machine columns."""
        return self._matrix.shape[1]

    @property
    def interval_s(self) -> float:
        """Sampling interval in seconds."""
        return self._interval_s

    @property
    def start_s(self) -> float:
        """Time of the first sample."""
        return self._start_s

    @property
    def duration_s(self) -> float:
        """Covered time span in seconds."""
        return self.timestamps * self._interval_s

    @property
    def end_s(self) -> float:
        """Time just past the final sample."""
        return self._start_s + self.duration_s

    def mean_utilisation(self) -> float:
        """Grand mean utilisation across machines and time."""
        return float(np.mean(self._matrix))

    # ------------------------------------------------------------------ #
    # Access                                                              #
    # ------------------------------------------------------------------ #

    def at(self, time_s: float) -> np.ndarray:
        """Per-machine utilisation at ``time_s`` (zero-order hold).

        Times before the trace return the first sample; times at or past
        the end return the last (the simulator may run slightly beyond).
        """
        idx = int((time_s - self._start_s) // self._interval_s)
        idx = min(max(idx, 0), self.timestamps - 1)
        return self._matrix[idx]

    def constant_until(self, time_s: float) -> float:
        """Time until which :meth:`at` keeps returning the same sample.

        Past the final sample the trace holds forever, so the bound is
        ``inf`` there. Used by the fast-forward guard to cap a jump at
        the next workload change.
        """
        idx = int((time_s - self._start_s) // self._interval_s)
        idx = min(max(idx, 0), self.timestamps - 1)
        if idx == self.timestamps - 1:
            return float("inf")
        return self._start_s + (idx + 1) * self._interval_s

    def slices(self) -> "list[TraceSlice]":
        """All samples as :class:`TraceSlice` records."""
        return [
            TraceSlice(
                time_s=self._start_s + i * self._interval_s,
                utilisation=self._matrix[i],
            )
            for i in range(self.timestamps)
        ]

    def window(self, start_s: float, end_s: float) -> "UtilizationTrace":
        """Sub-trace covering ``[start_s, end_s)``.

        Raises:
            TraceFormatError: if the window is empty or outside the trace.
        """
        if end_s <= start_s:
            raise TraceFormatError("window end must be after start")
        first = int((start_s - self._start_s) // self._interval_s)
        last = int(math.ceil((end_s - self._start_s) / self._interval_s))
        if first < 0 or last > self.timestamps or first >= last:
            raise TraceFormatError(
                f"window [{start_s}, {end_s}) outside trace "
                f"[{self._start_s}, {self.end_s})"
            )
        return UtilizationTrace(
            self._matrix[first:last].copy(),
            interval_s=self._interval_s,
            start_s=self._start_s + first * self._interval_s,
        )

    def resample(self, interval_s: float) -> "UtilizationTrace":
        """Return a copy resampled to a coarser or finer interval.

        Coarsening averages whole groups of samples; refining repeats
        samples (zero-order hold). The target must be an integer multiple
        or divisor of the current interval.
        """
        if interval_s <= 0.0:
            raise TraceFormatError("interval must be positive")
        ratio = interval_s / self._interval_s
        if ratio >= 1.0:
            factor = int(round(ratio))
            if not math.isclose(factor, ratio):
                raise TraceFormatError(
                    "coarser interval must be an integer multiple"
                )
            whole = (self.timestamps // factor) * factor
            if whole == 0:
                raise TraceFormatError("trace too short to resample")
            grouped = self._matrix[:whole].reshape(-1, factor, self.machines)
            return UtilizationTrace(
                grouped.mean(axis=1), interval_s=interval_s, start_s=self._start_s
            )
        factor = int(round(1.0 / ratio))
        if not math.isclose(self._interval_s / factor, interval_s):
            raise TraceFormatError("finer interval must be an integer divisor")
        repeated = np.repeat(self._matrix, factor, axis=0)
        return UtilizationTrace(
            repeated, interval_s=interval_s, start_s=self._start_s
        )

    def with_added(self, delta: np.ndarray) -> "UtilizationTrace":
        """Return a copy with ``delta`` added and re-clipped to [0, 1].

        Used to inject extra load (e.g. a cluster-wide surge) on top of a
        base trace.
        """
        if delta.shape != self._matrix.shape:
            raise TraceFormatError(
                f"delta shape {delta.shape} != trace shape {self._matrix.shape}"
            )
        return UtilizationTrace(
            np.clip(self._matrix + delta, 0.0, 1.0),
            interval_s=self._interval_s,
            start_s=self._start_s,
        )
