"""Unit helpers and physical constants shared across the simulator.

The simulator works in SI base units internally:

* power   — watts (W)
* energy  — joules (J)
* time    — seconds (s)
* voltage — volts (V)
* current — amperes (A)

The paper (and data-center practice) quotes energy in watt-hours and time
in minutes/hours, so this module provides explicit, readable converters.
Using named functions instead of bare multiplications keeps the physics
code free of magic constants such as ``3600``.
"""

from __future__ import annotations

SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0

#: The Google cluster trace used by the paper samples machine utilisation
#: every five minutes.
TRACE_INTERVAL_S = 5.0 * SECONDS_PER_MINUTE


def wh_to_joules(wh: float) -> float:
    """Convert watt-hours to joules."""
    return wh * SECONDS_PER_HOUR


def joules_to_wh(joules: float) -> float:
    """Convert joules to watt-hours."""
    return joules / SECONDS_PER_HOUR


def kwh_to_joules(kwh: float) -> float:
    """Convert kilowatt-hours to joules."""
    return kwh * 1000.0 * SECONDS_PER_HOUR


def minutes(m: float) -> float:
    """Return ``m`` minutes expressed in seconds."""
    return m * SECONDS_PER_MINUTE


def hours(h: float) -> float:
    """Return ``h`` hours expressed in seconds."""
    return h * SECONDS_PER_HOUR


def days(d: float) -> float:
    """Return ``d`` days expressed in seconds."""
    return d * SECONDS_PER_DAY


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    Raises:
        ValueError: if ``low > high``.
    """
    if low > high:
        raise ValueError(f"empty clamp interval: [{low}, {high}]")
    if value < low:
        return low
    if value > high:
        return high
    return value


def fraction(part: float, whole: float) -> float:
    """Return ``part / whole``, defining ``0 / 0`` as ``0.0``.

    Useful for ratios such as state-of-charge or throughput where an empty
    denominator means "nothing to measure" rather than an error.
    """
    if whole == 0.0:
        return 0.0
    return part / whole
