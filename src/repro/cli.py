"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``survive`` — run one attack scenario against one defense scheme and
  print the survival outcome.
* ``grid`` — the full Fig.-15 survival grid.
* ``report`` — run every reproduction experiment and write EXPERIMENTS.md.
* ``demo`` — the testbed two-phase attack walkthrough (Figs. 6/7).
* ``bench`` — a reduced fig15-style sweep through the fast paths
  (fast-forward + prefix sharing), with optional cProfile output;
  ``--scale``, ``--cohort`` and ``--compiled`` switch to the
  topology-scale, stacked-cohort and compiled-kernel-tier benchmarks
  respectively.
* ``search`` — adversarial worst-case search over an attack space,
  with optional grid refinement; ``--bench`` runs the pruned+batched
  vs naive throughput benchmark and writes ``BENCH_search.json``.
* ``tune`` — walk a defense-knob grid cost-ascending until the
  searched worst case meets a survival target (Fig. 17, adaptive).
"""

from __future__ import annotations

import argparse
import sys

from .attack.scenario import standard_scenarios
from .attack.virus import VirusKind
from .defense import SCHEMES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Power Attack Defense: Securing "
            "Battery-Backed Data Centers' (ISCA 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survive = sub.add_parser(
        "survive", help="one scheme vs one attack scenario"
    )
    survive.add_argument(
        "--scheme", choices=list(SCHEMES), default="PAD",
        help="defense scheme (paper Table III)",
    )
    survive.add_argument(
        "--scenario",
        choices=[s.name for s in standard_scenarios()],
        default="dense-cpu",
        help="attack scenario (paper Fig. 15 grid)",
    )
    survive.add_argument("--window", type=float, default=2400.0,
                         help="observation window in seconds")
    survive.add_argument("--seed", type=int, default=3)

    grid = sub.add_parser("grid", help="the full Fig.-15 survival grid")
    grid.add_argument("--window", type=float, default=2400.0)
    grid.add_argument("--seed", type=int, default=3)
    grid.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width for the sweep (0 = sequential; "
             "parallel results are bit-identical)",
    )
    grid.add_argument(
        "--demo", action="store_true",
        help="run the pinned attack-during-sag ride-through "
             "demonstration instead of the Fig.-15 sweep (the demo "
             "pins its own seeds; --window/--seed/--workers do not "
             "apply)",
    )

    report = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")

    sub.add_parser("demo", help="testbed two-phase attack walkthrough")

    bench = sub.add_parser(
        "bench",
        help="reduced fig15-style sweep through the fast paths",
    )
    bench.add_argument("--window", type=float, default=1200.0,
                       help="observation window in seconds")
    bench.add_argument(
        "--onset", type=float, default=900.0,
        help="attack onset inside the window (late onset gives the "
             "shared benign prefix something to share)",
    )
    bench.add_argument("--seed", type=int, default=3)
    bench.add_argument(
        "--profile", action="store_true",
        help="wrap the sweep in cProfile and print the top 25 entries "
             "by cumulative time; with --compiled, profiles one "
             "steady-state compiled pass (warm-up excluded, kernel "
             "dispatch frames labeled per kernel)",
    )
    bench.add_argument(
        "--scale", action="store_true",
        help="topology scale benchmark instead: both backends at "
             "22/128/512/1024 racks, writing BENCH_scale.json",
    )
    bench.add_argument(
        "--cohort", action="store_true",
        help="cohort benchmark instead: the committed 36-cell sweep "
             "grid stacked through the cohort backend vs per-cell "
             "vectorized runs, writing BENCH_cohort.json "
             "(--window/--onset do not apply; the grid is fixed so the "
             "baseline stays comparable across runs)",
    )
    bench.add_argument(
        "--cohort-output", default="BENCH_cohort.json",
        help="where the cohort benchmark writes its JSON report",
    )
    bench.add_argument(
        "--compiled", action="store_true",
        help="compiled-kernel benchmark instead: the numpy and compiled "
             "kernel tiers over the same cohort sweeps — per-kernel "
             "micro timings plus an end-to-end sustained-overload "
             "survival sweep — writing BENCH_compiled.json",
    )
    bench.add_argument(
        "--compiled-output", default="BENCH_compiled.json",
        help="where the compiled-kernel benchmark writes its JSON report",
    )
    bench.add_argument(
        "--scale-duration", type=float, default=60.0,
        help="simulated seconds per scale case",
    )
    bench.add_argument(
        "--scale-output", default="BENCH_scale.json",
        help="where the scale benchmark writes its JSON report",
    )

    search = sub.add_parser(
        "search",
        help="adversarial worst-case search over an attack space",
    )
    _add_space_arguments(search)
    search.add_argument(
        "--scheme", choices=list(SCHEMES), default="PAD",
        help="defense scheme to search against",
    )
    search.add_argument(
        "--probes", default="0.25,0.5",
        help="comma-separated probe fractions of the window in (0, 1); "
             "empty string evaluates exhaustively",
    )
    search.add_argument(
        "--budget", type=int, default=0,
        help="sample this many candidates from the space instead of "
             "enumerating it (0 = exhaustive enumeration)",
    )
    search.add_argument(
        "--refine", type=int, default=0,
        help="grid-refinement iterations around the found worst case",
    )
    search.add_argument(
        "--journal", default=None,
        help="JSONL checkpoint journal (enables --resume)",
    )
    search.add_argument(
        "--resume", action="store_true",
        help="replay resolved candidates from the journal",
    )
    search.add_argument(
        "--output", default=None,
        help="write the frontier JSON document here",
    )
    search.add_argument(
        "--bench", action="store_true",
        help="run the pruned+batched vs naive throughput benchmark "
             "instead (space flags do not apply; the grid is fixed so "
             "the baseline stays comparable across runs)",
    )
    search.add_argument(
        "--bench-output", default="BENCH_search.json",
        help="where the search benchmark writes its JSON report",
    )

    tune = sub.add_parser(
        "tune",
        help="cheapest defense configuration meeting a survival target",
    )
    _add_space_arguments(tune)
    tune.add_argument(
        "--scheme", choices=list(SCHEMES), default="PAD",
        help="defense scheme to tune",
    )
    tune.add_argument(
        "--target", type=float, default=1200.0,
        help="survival target in seconds the searched worst case "
             "must meet",
    )
    tune.add_argument(
        "--probes", default="0.25,0.5",
        help="probe fractions for the inner search",
    )
    tune.add_argument(
        "--udeb", default="",
        help="comma-separated uDEB capacities (Wh/rack) to try",
    )
    tune.add_argument(
        "--vdeb", default="",
        help="comma-separated vDEB ideal-discharge fractions to try",
    )
    tune.add_argument(
        "--shed", default="",
        help="comma-separated Level-3 shed-ratio caps to try",
    )
    tune.add_argument(
        "--reserve", default="",
        help="comma-separated ride-through reserve floors (SOC in "
             "[0, 1); 0 removes the reserve) to try",
    )
    tune.add_argument(
        "--journal", default=None,
        help="JSONL checkpoint journal stem for the inner searches "
             "(one file per trial; enables --resume)",
    )
    tune.add_argument(
        "--resume", action="store_true",
        help="replay resolved candidates from the per-trial journals",
    )
    tune.add_argument(
        "--output", default=None,
        help="write the tuning JSON document here",
    )
    return parser


def _add_space_arguments(parser: argparse.ArgumentParser) -> None:
    """Attack-space axes shared by the ``search`` and ``tune`` verbs."""
    parser.add_argument("--window", type=float, default=2400.0,
                        help="observation window in seconds")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument(
        "--onsets", default="300",
        help="comma-separated attack onsets (s) inside the window",
    )
    parser.add_argument(
        "--widths", default="1,2,4",
        help="comma-separated spike widths (s)",
    )
    parser.add_argument(
        "--rates", default="2,6",
        help="comma-separated spike rates (per minute)",
    )
    parser.add_argument(
        "--nodes", default="3,6",
        help="comma-separated attacker node counts",
    )
    parser.add_argument(
        "--kind", choices=[k.value for k in VirusKind], default="cpu",
        help="virus benchmark class",
    )


def _parse_floats(text: str) -> "tuple[float, ...]":
    return tuple(float(x) for x in text.split(",") if x.strip())


def _parse_ints(text: str) -> "tuple[int, ...]":
    return tuple(int(x) for x in text.split(",") if x.strip())


def _build_space(args: argparse.Namespace):
    from .search import AttackSpace

    return AttackSpace(
        onsets_s=_parse_floats(args.onsets),
        widths_s=_parse_floats(args.widths),
        rates_per_min=_parse_floats(args.rates),
        node_counts=_parse_ints(args.nodes),
        kinds=(VirusKind(args.kind),),
    )


def _cmd_search_bench(args: argparse.Namespace) -> int:
    """Run the search benchmark and gate it like the other bench verbs."""
    import json

    from .search.bench import SEARCH_SPEEDUP_FLOOR, run_search_bench

    report, problems = run_search_bench(seed=args.seed)
    print(f"search : {report['search_s']:7.2f}s  "
          f"({report['candidates']} candidates, "
          f"{report['cells_run']} cells run)")
    print(f"naive  : {report['naive_s']:7.2f}s  "
          f"(per-candidate full-window runs)")
    print(f"speedup: {report['speedup']:.2f}x  "
          f"(floor {SEARCH_SPEEDUP_FLOOR:.1f}x)")
    with open(args.bench_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"\nwrote {args.bench_output}")
    if problems:
        for problem in problems[:6]:
            print(f"error: {problem}")
        print(f"error: searched frontier diverged from the naive "
              f"reference ({len(problems)} discrepancies)")
        return 1
    if report["speedup"] < SEARCH_SPEEDUP_FLOOR:
        print(f"error: search is only {report['speedup']:.2f}x naive "
              f"(floor {SEARCH_SPEEDUP_FLOOR:.1f}x)")
        return 1
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    """Search an attack space for a scheme's worst case."""
    import json

    from .experiments.common import standard_setup
    from .search import FrontierSearch

    if args.bench:
        return _cmd_search_bench(args)
    setup = standard_setup(seed=args.seed)
    space = _build_space(args)
    probes = _parse_floats(args.probes)
    candidates = (
        space.sample(args.budget, seed=args.seed)
        if args.budget > 0
        else list(space.candidates())
    )
    search = FrontierSearch(
        setup, candidates, args.scheme,
        window_s=args.window,
        probe_fractions=probes,
        journal_path=args.journal,
    )
    result = search.run(resume=args.resume)
    for _ in range(args.refine):
        space = space.refine(candidates[result.worst[0].index])
        candidates = list(space.candidates())
        search = FrontierSearch(
            setup, candidates, args.scheme,
            window_s=args.window,
            probe_fractions=probes,
        )
        result = search.run()
    exact = sum(1 for o in result.outcomes if o.status == "exact")
    pruned = len(result.outcomes) - exact
    print(f"scheme     : {args.scheme}")
    print(f"candidates : {len(result.outcomes)} resolved "
          f"({exact} exact, {pruned} pruned, "
          f"{result.cells_run} cells run)")
    print(f"worst case : {result.worst_survival_s:.1f} s")
    for outcome in result.worst:
        print(f"  {outcome.key}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    """Tune defense knobs against the searched worst case."""
    import json

    from .experiments.common import standard_setup
    from .search import DefenseSpace, DefenseTuner

    setup = standard_setup(seed=args.seed)
    space = _build_space(args)
    defenses = DefenseSpace(
        udeb_capacities_wh=_parse_floats(args.udeb),
        vdeb_ideal_discharge_fractions=_parse_floats(args.vdeb),
        shed_ratio_caps=_parse_floats(args.shed),
        reserve_floors=_parse_floats(args.reserve),
    )
    tuner = DefenseTuner(
        setup, space, defenses, args.scheme,
        target_survival_s=args.target,
        window_s=args.window,
        probe_fractions=_parse_floats(args.probes),
        journal_path=args.journal,
    )
    result = tuner.run(resume=args.resume)
    print(f"scheme : {args.scheme}  target {args.target:.0f} s")
    for trial in result.trials:
        verdict = "meets target" if trial.met_target else "fails"
        print(f"  {trial.knobs.label():<32} ${trial.cost_dollars:>8.0f}  "
              f"worst {trial.worst_survival_s:>7.1f} s  {verdict}")
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.to_json(), handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote {args.output}")
    if result.best is None:
        print("no configuration in the space met the target")
        return 1
    print(f"cheapest pass: {result.best.label()} "
          f"(${result.best_cost_dollars:.0f})")
    return 0


def _cmd_survive(args: argparse.Namespace) -> int:
    from .experiments.common import run_survival, standard_setup

    scenario = next(
        s for s in standard_scenarios() if s.name == args.scenario
    )
    setup = standard_setup(seed=args.seed)
    result = run_survival(
        setup, args.scheme, scenario, window_s=args.window
    )
    survival = result.survival_or_window()
    censored = not result.trips
    print(f"scheme   : {args.scheme}")
    print(f"scenario : {scenario.name} ({scenario.nodes} nodes, "
          f"{scenario.spikes.width_s:.0f}s spikes at "
          f"{scenario.spikes.rate_per_min:.0f}/min)")
    print(f"survival : {survival:.0f} s"
          + (" (survived the whole window)" if censored else ""))
    print(f"overloads: {len(result.overloads)}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .experiments import fig15_survival
    from .experiments.common import standard_setup

    if args.demo:
        from .experiments import attack_during_sag

        summary = attack_during_sag.main()
        return 0 if summary.rides_through else 1

    setup = standard_setup(seed=args.seed)
    grid = fig15_survival.run(
        setup=setup, window_s=args.window, workers=args.workers
    )
    rows = dict(grid.survival_s)
    rows["Avg."] = grid.averages()
    from .experiments.common import format_table

    print(format_table(rows, value_format="{:>10.0f}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import report

    report.main(args.output)
    return 0


#: Scale-benchmark grid: (racks, mid-tier PDUs). The first entry is the
#: paper's flat 22-rack cluster; the rest exercise the hierarchical
#: topology at fleet scale.
SCALE_GRID = ((22, 1), (128, 4), (512, 8), (1024, 16))

#: Required vectorized-over-scalar advantage at the largest grid size.
SCALE_SPEEDUP_FLOOR = 5.0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    """Benchmark both physics backends across topology sizes.

    For each grid size, runs the same PS-scheme simulation on the
    scalar (per-object oracle) and vectorized (flat-array) backends and
    reports throughput in steps x racks per second. The recorder runs
    under a hard row budget so memory stays bounded even at 1024 racks;
    multi-PDU cases record per-PDU aggregates rather than per-rack
    matrices. Writes a JSON report and exits non-zero when the
    vectorized backend fails its speedup floor at the largest size.
    """
    import json
    import time

    from .benchmeta import bench_environment
    from .config import ClusterConfig, DataCenterConfig, TopologyConfig
    from .sim.datacenter import DataCenterSimulation
    from .workload.synthetic import SyntheticTraceConfig, generate_trace

    duration_s = args.scale_duration
    dt = 0.5
    row_budget = 64
    cases = []
    for racks, pdus in SCALE_GRID:
        topology = (
            TopologyConfig(racks_per_pdu=(racks // pdus,) * pdus)
            if pdus > 1
            else None
        )
        config = DataCenterConfig(
            cluster=ClusterConfig(racks=racks, topology=topology),
            seed=args.seed,
        )
        trace = generate_trace(
            SyntheticTraceConfig(
                machines=racks * config.cluster.rack.servers,
                duration_s=max(600.0, duration_s),
            ),
            seed=args.seed,
        )
        steps = int(round(duration_s / dt))
        case = {"racks": racks, "pdus": pdus, "steps": steps}
        for backend in ("scalar", "vectorized"):
            sim = DataCenterSimulation(
                config,
                trace,
                SCHEMES["PS"],
                backend=backend,
                recorder_row_budget=row_budget,
                record_pdu_aggregates=pdus > 1,
            )
            start = time.perf_counter()
            result = sim.run(duration_s=duration_s, dt=dt, record_every=1)
            elapsed = time.perf_counter() - start
            case[backend] = {
                "elapsed_s": round(elapsed, 4),
                "steps_racks_per_s": round(steps * racks / elapsed, 1),
            }
            rows = len(result.recorder)
            case["recorder_rows"] = rows
            if rows > row_budget:
                print(f"error: recorder kept {rows} rows over the "
                      f"{row_budget}-row budget")
                return 1
        case["speedup"] = round(
            case["vectorized"]["steps_racks_per_s"]
            / case["scalar"]["steps_racks_per_s"],
            2,
        )
        cases.append(case)
        print(f"{racks:>5} racks x {pdus:>2} PDUs: "
              f"scalar {case['scalar']['steps_racks_per_s']:>12,.0f} "
              f"vectorized {case['vectorized']['steps_racks_per_s']:>12,.0f} "
              f"steps*racks/s ({case['speedup']:.1f}x)")
    top = cases[-1]
    report = {
        "scheme": "PS",
        "dt_s": dt,
        "duration_s": duration_s,
        "recorder_row_budget": row_budget,
        "speedup_floor": SCALE_SPEEDUP_FLOOR,
        "speedup_at_max_scale": top["speedup"],
        "cases": cases,
        "environment": bench_environment("single pass per grid size"),
    }
    with open(args.scale_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.scale_output}")
    if top["speedup"] < SCALE_SPEEDUP_FLOOR:
        print(f"error: vectorized backend is only {top['speedup']:.1f}x "
              f"scalar at {top['racks']} racks "
              f"(floor {SCALE_SPEEDUP_FLOOR:.0f}x)")
        return 1
    return 0


#: Cohort-benchmark grid shape — the exact committed BENCH_sweep grid,
#: so the two baselines describe the same work.
COHORT_BENCH_WINDOW_S = 2400.0
COHORT_BENCH_ONSET_S = 2100.0

#: Required stacked-over-per-cell advantage. Conservative for shared CI
#: runners; BENCH_cohort.json records the real measured ratio.
COHORT_SPEEDUP_FLOOR = 4.0

#: Interleaved passes (cohort, per-cell, cohort, ...) keeping per-side
#: minima, mirroring the sweep bench's noise-rejection protocol.
COHORT_BENCH_REPEATS = 2


def _cmd_bench_cohort(args: argparse.Namespace) -> int:
    """Benchmark the stacked cohort backend against per-cell runs.

    Runs the committed 36-cell fig15-style grid (six Table-III schemes,
    three late-onset scenarios, two attacker seeds) once as a single
    batched cohort and once as 36 individual vectorized survival runs,
    demands bit-identical per-cell metrics, and writes the measured
    ratio to a JSON report. Exits non-zero when the metrics disagree or
    the speedup drops below the floor, so CI catches both a correctness
    break and a silently disabled batch path.
    """
    import json
    import time
    from dataclasses import replace

    from .attack.scenario import DENSE_ATTACK, SPARSE_ATTACK
    from .benchmeta import bench_environment
    from .experiments.common import (
        SCHEME_ORDER,
        CohortMember,
        run_survival,
        run_survival_cohort,
        standard_setup,
    )

    onset = COHORT_BENCH_ONSET_S
    window = COHORT_BENCH_WINDOW_S
    setup = standard_setup(seed=args.seed)
    scenarios = [
        replace(DENSE_ATTACK, start_s=onset, name="dense-late"),
        replace(SPARSE_ATTACK, start_s=onset, name="sparse-late"),
        replace(DENSE_ATTACK.with_nodes(4), start_s=onset + 60.0,
                name="dense4-later"),
    ]
    members = [
        CohortMember(scheme=scheme, scenario=scenario, seed=seed)
        for scenario in scenarios
        for seed in (7, 11)
        for scheme in SCHEME_ORDER
    ]

    cohort_s = per_cell_s = float("inf")
    cohort_metrics: "list[float]" = []
    per_cell_metrics: "list[float]" = []
    for _ in range(COHORT_BENCH_REPEATS):
        start = time.perf_counter()
        batched = run_survival_cohort(setup, members, window_s=window)
        cohort_s = min(cohort_s, time.perf_counter() - start)
        cohort_metrics = [r.survival_or_window() for r in batched]

        start = time.perf_counter()
        singles = [
            run_survival(
                setup, member.scheme, member.scenario,
                window_s=window, seed=member.seed,
            )
            for member in members
        ]
        per_cell_s = min(per_cell_s, time.perf_counter() - start)
        per_cell_metrics = [r.survival_or_window() for r in singles]

    mismatches = [
        (member.scheme, member.scenario.name, member.seed, got, want)
        for member, got, want in zip(
            members, cohort_metrics, per_cell_metrics
        )
        if got != want
    ]
    speedup = per_cell_s / cohort_s
    print(f"cohort  : {cohort_s:7.2f}s  ({len(members)} cells stacked)")
    print(f"per-cell: {per_cell_s:7.2f}s  (vectorized backend)")
    print(f"speedup : {speedup:.2f}x  (floor {COHORT_SPEEDUP_FLOOR:.1f}x)")

    report = {
        "benchmark": (
            "fig15-style survival grid: 6 schemes x 3 late-onset "
            "scenarios x 2 seeds (36 cells), stacked cohort vs "
            "per-cell vectorized"
        ),
        "window_s": window,
        "onset_s": onset,
        "cells": len(members),
        "cohort_s": round(cohort_s, 4),
        "per_cell_s": round(per_cell_s, 4),
        "speedup": round(speedup, 3),
        "speedup_floor": COHORT_SPEEDUP_FLOOR,
        "metrics_identical": not mismatches,
        "environment": bench_environment(
            f"min of {COHORT_BENCH_REPEATS} interleaved passes"
        ),
    }
    with open(args.cohort_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"\nwrote {args.cohort_output}")
    if mismatches:
        for scheme, scenario, seed, got, want in mismatches[:6]:
            print(f"error: {scheme}/{scenario}/s{seed}: cohort {got!r} "
                  f"!= per-cell {want!r}")
        print(f"error: {len(mismatches)} of {len(members)} cohort cells "
              f"diverged from the per-cell reference")
        return 1
    if speedup < COHORT_SPEEDUP_FLOOR:
        print(f"error: cohort backend is only {speedup:.2f}x per-cell "
              f"(floor {COHORT_SPEEDUP_FLOOR:.1f}x)")
        return 1
    return 0


#: End-to-end compiled-tier sweep: the paper's Phase-I sustained power
#: attack, where demand sits a few percent over the PDU budget and the
#: batteries drain steadily — the regime the steady-drain replay (and
#: its fused ``drain_block`` kernel) exists for. Levels bracket the
#: overload threshold from just above; 0.60 and below is budget-clean
#: (no battery activity, nothing for either tier to integrate).
COMPILED_BENCH_UTILISATIONS = (0.61, 0.63, 0.65)

#: Drainable schemes (stock management/battery hooks) stacked per level.
COMPILED_BENCH_SCHEMES = ("PS", "PSPC", "uDEB")

COMPILED_BENCH_WINDOW_S = 2400.0

#: Required compiled-over-numpy advantage on the end-to-end sweep.
#: Conservative for shared CI runners; BENCH_compiled.json records the
#: real measured ratio (~2.4x on the dev container).
COMPILED_SPEEDUP_FLOOR = 1.5

#: Interleaved passes (numpy, compiled, numpy, ...) keeping per-tier
#: minima, after one untimed warm-up pass per tier so kernel
#: compilation (numba JIT or the cc shared-object build) never lands
#: in a timed sample.
COMPILED_BENCH_REPEATS = 3


def _cmd_bench_compiled(args: argparse.Namespace) -> int:
    """Benchmark the compiled kernel tier against the numpy tier.

    Two sections, both min-of-N interleaved with warm-up excluded:

    * per-kernel micro timings — the live fused-dispatch call and the
      breaker thermal step at stacked-family width (132 branches), and
      the steady-drain replay (numpy per-tick ``_drain_step`` vs the
      fused ``drain_block`` call) on a drain-dominated cohort run;
    * an end-to-end survival sweep over the paper's Phase-I sustained
      overload: drainable schemes stacked at three utilisation levels
      just over the PDU budget, run once per kernel tier.

    Demands identical per-cell metrics across tiers and exits non-zero
    on divergence or when the end-to-end speedup drops below the floor,
    so CI catches both a correctness break and a silently degraded
    compiled tier.
    """
    import json
    import time

    import numpy as np

    from .benchmeta import bench_environment
    from .config import (
        BreakerConfig,
        ChargingPolicy,
        ClusterConfig,
        DataCenterConfig,
    )
    from .defense import SCHEMES, SchemeContext, StepState
    from .experiments.common import (
        CohortMember,
        ExperimentSetup,
        run_survival_cohort,
    )
    from .kernels import active_provider
    from .power.breaker_kernels import make_breaker_bank
    from .workload.cluster import ClusterModel
    from .workload.trace import UtilizationTrace

    provider = active_provider()
    if provider is None:
        print("error: no compiled-kernel provider available — install "
              "the repro[compiled] extra (numba) or a C compiler")
        return 1

    width = 132  # six stacked 22-rack cells, the cohort family shape

    def make_scheme(kernels: str):
        config = DataCenterConfig(
            cluster=ClusterConfig(racks=width, pdu_budget_fraction=0.83),
            charging=ChargingPolicy.ONLINE,
            seed=args.seed,
        )
        cluster = ClusterModel(config.cluster)
        limits = np.full(width, config.cluster.pdu_budget_w / width)
        context = SchemeContext(
            config=config,
            cluster=cluster,
            initial_soft_limits_w=limits,
            branch_rating_w=limits * 1.03,
            backend="vectorized",
            initial_battery_soc=0.6,
            kernels=kernels,
        )
        return SCHEMES["uDEB"](context)

    def time_dispatch(kernels: str, calls: int = 1500) -> float:
        scheme = make_scheme(kernels)
        rng = np.random.default_rng(args.seed)
        base = scheme.soft_limits_w.copy()
        servers = scheme.ctx.cluster.servers
        demands = [base * rng.uniform(0.3, 1.4, width) for _ in range(32)]
        utils = [rng.uniform(0.0, 1.0, servers) for _ in range(32)]
        start = time.perf_counter()
        t = 0.0
        for i in range(calls):
            scheme.dispatch(StepState(
                time_s=t, dt=1.0,
                rack_demand_w=demands[i % 32],
                metered_rack_avg_w=demands[i % 32],
                metered_server_util=utils[i % 32],
            ))
            t += 1.0
        return (time.perf_counter() - start) / calls

    def time_breaker(kernels: str, calls: int = 4000) -> float:
        rng = np.random.default_rng(args.seed)
        ratings = rng.uniform(900.0, 1100.0, width)
        bank = make_breaker_bank(
            "vectorized", BreakerConfig(), ratings, kernels=kernels
        )
        # Mixed benign/overloaded ticks; periodic re-arm keeps the trip
        # logic (not just whole-bank cooling) in the measured loop.
        loads = [ratings * rng.uniform(0.7, 1.2, width) for _ in range(32)]
        start = time.perf_counter()
        for i in range(calls):
            if i % 256 == 0:
                bank.reset_all()
            bank.step(loads[i % 32], 0.5, time_s=i * 0.5)
        return (time.perf_counter() - start) / calls

    def sustained_setup(level: float) -> ExperimentSetup:
        config = DataCenterConfig(seed=args.seed)
        machines = ClusterModel(config.cluster).servers
        flat = np.full((200, machines), level)
        return ExperimentSetup(
            config=config,
            trace=UtilizationTrace(flat, interval_s=300.0),
            attack_time_s=600.0,
        )

    def time_drain(kernels: str) -> float:
        members = [
            CohortMember(scheme="PS", scenario=None, seed=7)
            for _ in range(4)
        ]
        start = time.perf_counter()
        run_survival_cohort(
            sustained_setup(0.63), members, window_s=1800.0,
            record_every=40, kernels=kernels,
        )
        return time.perf_counter() - start

    def sweep(kernels: str) -> "tuple[float, list]":
        metrics = []
        start = time.perf_counter()
        for level in COMPILED_BENCH_UTILISATIONS:
            members = [
                CohortMember(scheme=scheme, scenario=None, seed=7)
                for scheme in COMPILED_BENCH_SCHEMES
                for _ in range(4)
            ]
            results = run_survival_cohort(
                sustained_setup(level), members,
                window_s=COMPILED_BENCH_WINDOW_S,
                record_every=40, kernels=kernels,
            )
            metrics.extend(
                (level, member.scheme, r.survival_or_window(),
                 r.delivered_work, r.demanded_work,
                 tuple(t.time_s for t in r.trips))
                for member, r in zip(members, results)
            )
        return time.perf_counter() - start, metrics

    # Warm-up (untimed): first compiled use builds/loads the kernels.
    for tier in ("numpy", "compiled"):
        time_dispatch(tier, calls=10)
        time_breaker(tier, calls=10)

    micro = {
        "dispatch": {"numpy": float("inf"), "compiled": float("inf")},
        "breaker": {"numpy": float("inf"), "compiled": float("inf")},
        "steady_drain": {"numpy": float("inf"), "compiled": float("inf")},
    }
    end_to_end = {"numpy": float("inf"), "compiled": float("inf")}
    sweep_metrics: "dict[str, list]" = {}
    for _ in range(COMPILED_BENCH_REPEATS):
        for tier in ("numpy", "compiled"):
            micro["dispatch"][tier] = min(
                micro["dispatch"][tier], time_dispatch(tier)
            )
            micro["breaker"][tier] = min(
                micro["breaker"][tier], time_breaker(tier)
            )
            micro["steady_drain"][tier] = min(
                micro["steady_drain"][tier], time_drain(tier)
            )
            elapsed, metrics = sweep(tier)
            end_to_end[tier] = min(end_to_end[tier], elapsed)
            sweep_metrics[tier] = metrics

    mismatches = [
        (got[0], got[1], got[2:], want[2:])
        for got, want in zip(
            sweep_metrics["compiled"], sweep_metrics["numpy"]
        )
        if got != want
    ]
    speedup = end_to_end["numpy"] / end_to_end["compiled"]

    def section(label: str, scale: float, unit: str) -> dict:
        numpy_t = micro[label]["numpy"] * scale
        compiled_t = micro[label]["compiled"] * scale
        print(f"{label:13s}: numpy {numpy_t:9.2f}{unit}  "
              f"compiled {compiled_t:9.2f}{unit}  "
              f"({numpy_t / compiled_t:.2f}x)")
        return {
            f"numpy_{unit}": round(numpy_t, 3),
            f"compiled_{unit}": round(compiled_t, 3),
            "speedup": round(numpy_t / compiled_t, 3),
        }

    kernels_report = {
        "dispatch": {"width": width, **section("dispatch", 1e6, "us")},
        "breaker": {"width": width, **section("breaker", 1e6, "us")},
        "steady_drain": {
            "window_s": 1800.0, **section("steady_drain", 1.0, "s"),
        },
    }
    print(f"end-to-end   : numpy {end_to_end['numpy']:9.2f}s  "
          f"compiled {end_to_end['compiled']:9.2f}s  ({speedup:.2f}x, "
          f"floor {COMPILED_SPEEDUP_FLOOR:.1f}x)")

    if args.profile:
        import cProfile
        import pstats

        # Kernel compilation happened during the warm-up passes above,
        # so the profile shows steady-state dispatch only. cc-provider
        # kernel calls appear as labeled <repro-kernels:NAME> frames;
        # under numba they surface as the numba dispatcher's __call__.
        print("\nprofile: one compiled end-to-end pass (warm-up/JIT "
              "excluded; C-kernel dispatch frames are labeled "
              "<repro-kernels:NAME>)")
        profiler = cProfile.Profile()
        profiler.runcall(sweep, "compiled")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)

    report = {
        "benchmark": (
            "compiled kernel tier vs numpy tier: per-kernel micro "
            "timings plus an end-to-end Phase-I sustained-overload "
            "survival sweep (3 drainable schemes x 4 stacked cells x "
            "3 utilisation levels just over the PDU budget)"
        ),
        "provider": provider,
        "window_s": COMPILED_BENCH_WINDOW_S,
        "utilisation_levels": list(COMPILED_BENCH_UTILISATIONS),
        "schemes": list(COMPILED_BENCH_SCHEMES),
        "cells_per_level": 4 * len(COMPILED_BENCH_SCHEMES),
        "kernels": kernels_report,
        "end_to_end": {
            "numpy_s": round(end_to_end["numpy"], 4),
            "compiled_s": round(end_to_end["compiled"], 4),
            "speedup": round(speedup, 3),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": COMPILED_SPEEDUP_FLOOR,
        "metrics_identical": not mismatches,
        "environment": bench_environment(
            f"min of {COMPILED_BENCH_REPEATS} interleaved passes; "
            "warm-up excluded"
        ),
    }
    with open(args.compiled_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"\nwrote {args.compiled_output}")
    if mismatches:
        for level, scheme, got, want in mismatches[:6]:
            print(f"error: u={level}/{scheme}: compiled {got!r} "
                  f"!= numpy {want!r}")
        print(f"error: {len(mismatches)} of "
              f"{len(sweep_metrics['numpy'])} cells diverged across "
              "kernel tiers")
        return 1
    if speedup < COMPILED_SPEEDUP_FLOOR:
        print(f"error: compiled tier is only {speedup:.2f}x numpy "
              f"(floor {COMPILED_SPEEDUP_FLOOR:.1f}x)")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time a reduced fig15-style sweep with every fast path enabled.

    Exercises fast-forward and prefix-snapshot sharing on a small grid
    and prints wall-clock plus the fast-forward counters; exits non-zero
    when fast-forward never jumped, so CI smoke jobs catch a silently
    disabled fast path. ``--profile`` wraps the sweep in cProfile;
    ``--scale`` runs the topology scale benchmark instead; ``--cohort``
    runs the stacked-vs-per-cell cohort benchmark instead;
    ``--compiled`` runs the compiled-vs-numpy kernel-tier benchmark
    instead.
    """
    if args.scale:
        return _cmd_bench_scale(args)
    if args.cohort:
        return _cmd_bench_cohort(args)
    if args.compiled:
        return _cmd_bench_compiled(args)
    import time
    from dataclasses import replace

    from .attack.scenario import DENSE_ATTACK, SPARSE_ATTACK
    from .experiments.common import (
        prepare_survival_prefix,
        resume_survival_from_snapshot,
        standard_setup,
        run_survival,
    )
    from .sim.datacenter import DataCenterSimulation

    setup = standard_setup(seed=args.seed)
    scenarios = [
        replace(DENSE_ATTACK, start_s=args.onset, name="dense-late"),
        replace(SPARSE_ATTACK, start_s=args.onset, name="sparse-late"),
    ]
    schemes = ("Conv", "PS", "uDEB")
    offset = min(s.start_s for s in scenarios)
    stats = None

    def sweep() -> "dict[str, dict[str, float]]":
        nonlocal stats
        grid: "dict[str, dict[str, float]]" = {}
        for scheme in schemes:
            snapshot = prepare_survival_prefix(
                setup, scheme, offset, window_s=args.window,
                fast_forward=True,
            )
            for scenario in scenarios:
                if snapshot is not None:
                    result = resume_survival_from_snapshot(
                        setup, snapshot, scenario
                    )
                else:
                    result = run_survival(
                        setup, scheme, scenario, window_s=args.window,
                        fast_forward=True,
                    )
                grid.setdefault(scenario.name, {})[scheme] = (
                    result.survival_or_window()
                )
            if snapshot is not None:
                prefix_sim = DataCenterSimulation.restore(snapshot)
                if stats is None:
                    stats = prefix_sim.fast_forward_stats
                else:
                    stats.jumps += prefix_sim.fast_forward_stats.jumps
                    stats.steps_skipped += (
                        prefix_sim.fast_forward_stats.steps_skipped
                    )
        return grid

    start = time.perf_counter()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        grid = profiler.runcall(sweep)
        elapsed = time.perf_counter() - start
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    else:
        grid = sweep()
        elapsed = time.perf_counter() - start

    from .experiments.common import format_table

    print(format_table(grid, value_format="{:>10.0f}"))
    print(f"\nbench wall-clock: {elapsed:.2f} s "
          f"({len(schemes)} schemes x {len(scenarios)} scenarios, "
          f"window {args.window:.0f} s, onset {args.onset:.0f} s)")
    if stats is None:
        print("fast-forward: no shared prefixes ran")
        return 1
    print(f"fast-forward: {stats.jumps} jumps, "
          f"{stats.steps_skipped} steps skipped")
    if stats.steps_skipped == 0:
        print("error: fast-forward never jumped — fast path disabled?")
        return 1
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from .experiments import fig06_two_phase, fig07_effective_attack

    fig06_two_phase.main()
    print()
    fig07_effective_attack.main()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "survive": _cmd_survive,
        "grid": _cmd_grid,
        "report": _cmd_report,
        "demo": _cmd_demo,
        "bench": _cmd_bench,
        "search": _cmd_search,
        "tune": _cmd_tune,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
