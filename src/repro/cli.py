"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``survive`` — run one attack scenario against one defense scheme and
  print the survival outcome.
* ``grid`` — the full Fig.-15 survival grid.
* ``report`` — run every reproduction experiment and write EXPERIMENTS.md.
* ``demo`` — the testbed two-phase attack walkthrough (Figs. 6/7).
"""

from __future__ import annotations

import argparse
import sys

from .attack.scenario import standard_scenarios
from .attack.virus import VirusKind
from .defense import SCHEMES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Power Attack Defense: Securing "
            "Battery-Backed Data Centers' (ISCA 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survive = sub.add_parser(
        "survive", help="one scheme vs one attack scenario"
    )
    survive.add_argument(
        "--scheme", choices=list(SCHEMES), default="PAD",
        help="defense scheme (paper Table III)",
    )
    survive.add_argument(
        "--scenario",
        choices=[s.name for s in standard_scenarios()],
        default="dense-cpu",
        help="attack scenario (paper Fig. 15 grid)",
    )
    survive.add_argument("--window", type=float, default=2400.0,
                         help="observation window in seconds")
    survive.add_argument("--seed", type=int, default=3)

    grid = sub.add_parser("grid", help="the full Fig.-15 survival grid")
    grid.add_argument("--window", type=float, default=2400.0)
    grid.add_argument("--seed", type=int, default=3)
    grid.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width for the sweep (0 = sequential; "
             "parallel results are bit-identical)",
    )

    report = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")

    sub.add_parser("demo", help="testbed two-phase attack walkthrough")
    return parser


def _cmd_survive(args: argparse.Namespace) -> int:
    from .experiments.common import run_survival, standard_setup

    scenario = next(
        s for s in standard_scenarios() if s.name == args.scenario
    )
    setup = standard_setup(seed=args.seed)
    result = run_survival(
        setup, args.scheme, scenario, window_s=args.window
    )
    survival = result.survival_or_window()
    censored = not result.trips
    print(f"scheme   : {args.scheme}")
    print(f"scenario : {scenario.name} ({scenario.nodes} nodes, "
          f"{scenario.spikes.width_s:.0f}s spikes at "
          f"{scenario.spikes.rate_per_min:.0f}/min)")
    print(f"survival : {survival:.0f} s"
          + (" (survived the whole window)" if censored else ""))
    print(f"overloads: {len(result.overloads)}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .experiments import fig15_survival
    from .experiments.common import standard_setup

    setup = standard_setup(seed=args.seed)
    grid = fig15_survival.run(
        setup=setup, window_s=args.window, workers=args.workers
    )
    rows = dict(grid.survival_s)
    rows["Avg."] = grid.averages()
    from .experiments.common import format_table

    print(format_table(rows, value_format="{:>10.0f}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import report

    report.main(args.output)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from .experiments import fig06_two_phase, fig07_effective_attack

    fig06_two_phase.main()
    print()
    fig07_effective_attack.main()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "survive": _cmd_survive,
        "grid": _cmd_grid,
        "report": _cmd_report,
        "demo": _cmd_demo,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
