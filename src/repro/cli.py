"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``survive`` — run one attack scenario against one defense scheme and
  print the survival outcome.
* ``grid`` — the full Fig.-15 survival grid.
* ``report`` — run every reproduction experiment and write EXPERIMENTS.md.
* ``demo`` — the testbed two-phase attack walkthrough (Figs. 6/7).
* ``bench`` — a reduced fig15-style sweep through the fast paths
  (fast-forward + prefix sharing), with optional cProfile output;
  ``--scale`` and ``--cohort`` switch to the topology-scale and
  stacked-cohort benchmarks respectively.
"""

from __future__ import annotations

import argparse
import sys

from .attack.scenario import standard_scenarios
from .attack.virus import VirusKind
from .defense import SCHEMES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Power Attack Defense: Securing "
            "Battery-Backed Data Centers' (ISCA 2016)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survive = sub.add_parser(
        "survive", help="one scheme vs one attack scenario"
    )
    survive.add_argument(
        "--scheme", choices=list(SCHEMES), default="PAD",
        help="defense scheme (paper Table III)",
    )
    survive.add_argument(
        "--scenario",
        choices=[s.name for s in standard_scenarios()],
        default="dense-cpu",
        help="attack scenario (paper Fig. 15 grid)",
    )
    survive.add_argument("--window", type=float, default=2400.0,
                         help="observation window in seconds")
    survive.add_argument("--seed", type=int, default=3)

    grid = sub.add_parser("grid", help="the full Fig.-15 survival grid")
    grid.add_argument("--window", type=float, default=2400.0)
    grid.add_argument("--seed", type=int, default=3)
    grid.add_argument(
        "--workers", type=int, default=0,
        help="process-pool width for the sweep (0 = sequential; "
             "parallel results are bit-identical)",
    )

    report = sub.add_parser(
        "report", help="run all experiments and write EXPERIMENTS.md"
    )
    report.add_argument("output", nargs="?", default="EXPERIMENTS.md")

    sub.add_parser("demo", help="testbed two-phase attack walkthrough")

    bench = sub.add_parser(
        "bench",
        help="reduced fig15-style sweep through the fast paths",
    )
    bench.add_argument("--window", type=float, default=1200.0,
                       help="observation window in seconds")
    bench.add_argument(
        "--onset", type=float, default=900.0,
        help="attack onset inside the window (late onset gives the "
             "shared benign prefix something to share)",
    )
    bench.add_argument("--seed", type=int, default=3)
    bench.add_argument(
        "--profile", action="store_true",
        help="wrap the sweep in cProfile and print the top 25 entries "
             "by cumulative time",
    )
    bench.add_argument(
        "--scale", action="store_true",
        help="topology scale benchmark instead: both backends at "
             "22/128/512/1024 racks, writing BENCH_scale.json",
    )
    bench.add_argument(
        "--cohort", action="store_true",
        help="cohort benchmark instead: the committed 36-cell sweep "
             "grid stacked through the cohort backend vs per-cell "
             "vectorized runs, writing BENCH_cohort.json "
             "(--window/--onset do not apply; the grid is fixed so the "
             "baseline stays comparable across runs)",
    )
    bench.add_argument(
        "--cohort-output", default="BENCH_cohort.json",
        help="where the cohort benchmark writes its JSON report",
    )
    bench.add_argument(
        "--scale-duration", type=float, default=60.0,
        help="simulated seconds per scale case",
    )
    bench.add_argument(
        "--scale-output", default="BENCH_scale.json",
        help="where the scale benchmark writes its JSON report",
    )
    return parser


def _cmd_survive(args: argparse.Namespace) -> int:
    from .experiments.common import run_survival, standard_setup

    scenario = next(
        s for s in standard_scenarios() if s.name == args.scenario
    )
    setup = standard_setup(seed=args.seed)
    result = run_survival(
        setup, args.scheme, scenario, window_s=args.window
    )
    survival = result.survival_or_window()
    censored = not result.trips
    print(f"scheme   : {args.scheme}")
    print(f"scenario : {scenario.name} ({scenario.nodes} nodes, "
          f"{scenario.spikes.width_s:.0f}s spikes at "
          f"{scenario.spikes.rate_per_min:.0f}/min)")
    print(f"survival : {survival:.0f} s"
          + (" (survived the whole window)" if censored else ""))
    print(f"overloads: {len(result.overloads)}")
    return 0


def _cmd_grid(args: argparse.Namespace) -> int:
    from .experiments import fig15_survival
    from .experiments.common import standard_setup

    setup = standard_setup(seed=args.seed)
    grid = fig15_survival.run(
        setup=setup, window_s=args.window, workers=args.workers
    )
    rows = dict(grid.survival_s)
    rows["Avg."] = grid.averages()
    from .experiments.common import format_table

    print(format_table(rows, value_format="{:>10.0f}"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments import report

    report.main(args.output)
    return 0


#: Scale-benchmark grid: (racks, mid-tier PDUs). The first entry is the
#: paper's flat 22-rack cluster; the rest exercise the hierarchical
#: topology at fleet scale.
SCALE_GRID = ((22, 1), (128, 4), (512, 8), (1024, 16))

#: Required vectorized-over-scalar advantage at the largest grid size.
SCALE_SPEEDUP_FLOOR = 5.0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    """Benchmark both physics backends across topology sizes.

    For each grid size, runs the same PS-scheme simulation on the
    scalar (per-object oracle) and vectorized (flat-array) backends and
    reports throughput in steps x racks per second. The recorder runs
    under a hard row budget so memory stays bounded even at 1024 racks;
    multi-PDU cases record per-PDU aggregates rather than per-rack
    matrices. Writes a JSON report and exits non-zero when the
    vectorized backend fails its speedup floor at the largest size.
    """
    import json
    import time

    from .config import ClusterConfig, DataCenterConfig, TopologyConfig
    from .sim.datacenter import DataCenterSimulation
    from .workload.synthetic import SyntheticTraceConfig, generate_trace

    duration_s = args.scale_duration
    dt = 0.5
    row_budget = 64
    cases = []
    for racks, pdus in SCALE_GRID:
        topology = (
            TopologyConfig(racks_per_pdu=(racks // pdus,) * pdus)
            if pdus > 1
            else None
        )
        config = DataCenterConfig(
            cluster=ClusterConfig(racks=racks, topology=topology),
            seed=args.seed,
        )
        trace = generate_trace(
            SyntheticTraceConfig(
                machines=racks * config.cluster.rack.servers,
                duration_s=max(600.0, duration_s),
            ),
            seed=args.seed,
        )
        steps = int(round(duration_s / dt))
        case = {"racks": racks, "pdus": pdus, "steps": steps}
        for backend in ("scalar", "vectorized"):
            sim = DataCenterSimulation(
                config,
                trace,
                SCHEMES["PS"],
                backend=backend,
                recorder_row_budget=row_budget,
                record_pdu_aggregates=pdus > 1,
            )
            start = time.perf_counter()
            result = sim.run(duration_s=duration_s, dt=dt, record_every=1)
            elapsed = time.perf_counter() - start
            case[backend] = {
                "elapsed_s": round(elapsed, 4),
                "steps_racks_per_s": round(steps * racks / elapsed, 1),
            }
            rows = len(result.recorder)
            case["recorder_rows"] = rows
            if rows > row_budget:
                print(f"error: recorder kept {rows} rows over the "
                      f"{row_budget}-row budget")
                return 1
        case["speedup"] = round(
            case["vectorized"]["steps_racks_per_s"]
            / case["scalar"]["steps_racks_per_s"],
            2,
        )
        cases.append(case)
        print(f"{racks:>5} racks x {pdus:>2} PDUs: "
              f"scalar {case['scalar']['steps_racks_per_s']:>12,.0f} "
              f"vectorized {case['vectorized']['steps_racks_per_s']:>12,.0f} "
              f"steps*racks/s ({case['speedup']:.1f}x)")
    top = cases[-1]
    report = {
        "scheme": "PS",
        "dt_s": dt,
        "duration_s": duration_s,
        "recorder_row_budget": row_budget,
        "speedup_floor": SCALE_SPEEDUP_FLOOR,
        "speedup_at_max_scale": top["speedup"],
        "cases": cases,
    }
    with open(args.scale_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.scale_output}")
    if top["speedup"] < SCALE_SPEEDUP_FLOOR:
        print(f"error: vectorized backend is only {top['speedup']:.1f}x "
              f"scalar at {top['racks']} racks "
              f"(floor {SCALE_SPEEDUP_FLOOR:.0f}x)")
        return 1
    return 0


#: Cohort-benchmark grid shape — the exact committed BENCH_sweep grid,
#: so the two baselines describe the same work.
COHORT_BENCH_WINDOW_S = 2400.0
COHORT_BENCH_ONSET_S = 2100.0

#: Required stacked-over-per-cell advantage. Conservative for shared CI
#: runners; BENCH_cohort.json records the real measured ratio.
COHORT_SPEEDUP_FLOOR = 4.0

#: Interleaved passes (cohort, per-cell, cohort, ...) keeping per-side
#: minima, mirroring the sweep bench's noise-rejection protocol.
COHORT_BENCH_REPEATS = 2


def _cmd_bench_cohort(args: argparse.Namespace) -> int:
    """Benchmark the stacked cohort backend against per-cell runs.

    Runs the committed 36-cell fig15-style grid (six Table-III schemes,
    three late-onset scenarios, two attacker seeds) once as a single
    batched cohort and once as 36 individual vectorized survival runs,
    demands bit-identical per-cell metrics, and writes the measured
    ratio to a JSON report. Exits non-zero when the metrics disagree or
    the speedup drops below the floor, so CI catches both a correctness
    break and a silently disabled batch path.
    """
    import json
    import time
    from dataclasses import replace

    from .attack.scenario import DENSE_ATTACK, SPARSE_ATTACK
    from .experiments.common import (
        SCHEME_ORDER,
        CohortMember,
        run_survival,
        run_survival_cohort,
        standard_setup,
    )

    onset = COHORT_BENCH_ONSET_S
    window = COHORT_BENCH_WINDOW_S
    setup = standard_setup(seed=args.seed)
    scenarios = [
        replace(DENSE_ATTACK, start_s=onset, name="dense-late"),
        replace(SPARSE_ATTACK, start_s=onset, name="sparse-late"),
        replace(DENSE_ATTACK.with_nodes(4), start_s=onset + 60.0,
                name="dense4-later"),
    ]
    members = [
        CohortMember(scheme=scheme, scenario=scenario, seed=seed)
        for scenario in scenarios
        for seed in (7, 11)
        for scheme in SCHEME_ORDER
    ]

    cohort_s = per_cell_s = float("inf")
    cohort_metrics: "list[float]" = []
    per_cell_metrics: "list[float]" = []
    for _ in range(COHORT_BENCH_REPEATS):
        start = time.perf_counter()
        batched = run_survival_cohort(setup, members, window_s=window)
        cohort_s = min(cohort_s, time.perf_counter() - start)
        cohort_metrics = [r.survival_or_window() for r in batched]

        start = time.perf_counter()
        singles = [
            run_survival(
                setup, member.scheme, member.scenario,
                window_s=window, seed=member.seed,
            )
            for member in members
        ]
        per_cell_s = min(per_cell_s, time.perf_counter() - start)
        per_cell_metrics = [r.survival_or_window() for r in singles]

    mismatches = [
        (member.scheme, member.scenario.name, member.seed, got, want)
        for member, got, want in zip(
            members, cohort_metrics, per_cell_metrics
        )
        if got != want
    ]
    speedup = per_cell_s / cohort_s
    print(f"cohort  : {cohort_s:7.2f}s  ({len(members)} cells stacked)")
    print(f"per-cell: {per_cell_s:7.2f}s  (vectorized backend)")
    print(f"speedup : {speedup:.2f}x  (floor {COHORT_SPEEDUP_FLOOR:.1f}x)")

    report = {
        "benchmark": (
            "fig15-style survival grid: 6 schemes x 3 late-onset "
            "scenarios x 2 seeds (36 cells), stacked cohort vs "
            "per-cell vectorized"
        ),
        "window_s": window,
        "onset_s": onset,
        "cells": len(members),
        "cohort_s": round(cohort_s, 4),
        "per_cell_s": round(per_cell_s, 4),
        "speedup": round(speedup, 3),
        "speedup_floor": COHORT_SPEEDUP_FLOOR,
        "metrics_identical": not mismatches,
        "recorded_on": (
            f"dev container (min of {COHORT_BENCH_REPEATS} interleaved "
            "passes)"
        ),
    }
    with open(args.cohort_output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")
    print(f"\nwrote {args.cohort_output}")
    if mismatches:
        for scheme, scenario, seed, got, want in mismatches[:6]:
            print(f"error: {scheme}/{scenario}/s{seed}: cohort {got!r} "
                  f"!= per-cell {want!r}")
        print(f"error: {len(mismatches)} of {len(members)} cohort cells "
              f"diverged from the per-cell reference")
        return 1
    if speedup < COHORT_SPEEDUP_FLOOR:
        print(f"error: cohort backend is only {speedup:.2f}x per-cell "
              f"(floor {COHORT_SPEEDUP_FLOOR:.1f}x)")
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Time a reduced fig15-style sweep with every fast path enabled.

    Exercises fast-forward and prefix-snapshot sharing on a small grid
    and prints wall-clock plus the fast-forward counters; exits non-zero
    when fast-forward never jumped, so CI smoke jobs catch a silently
    disabled fast path. ``--profile`` wraps the sweep in cProfile;
    ``--scale`` runs the topology scale benchmark instead; ``--cohort``
    runs the stacked-vs-per-cell cohort benchmark instead.
    """
    if args.scale:
        return _cmd_bench_scale(args)
    if args.cohort:
        return _cmd_bench_cohort(args)
    import time
    from dataclasses import replace

    from .attack.scenario import DENSE_ATTACK, SPARSE_ATTACK
    from .experiments.common import (
        prepare_survival_prefix,
        resume_survival_from_snapshot,
        standard_setup,
        run_survival,
    )
    from .sim.datacenter import DataCenterSimulation

    setup = standard_setup(seed=args.seed)
    scenarios = [
        replace(DENSE_ATTACK, start_s=args.onset, name="dense-late"),
        replace(SPARSE_ATTACK, start_s=args.onset, name="sparse-late"),
    ]
    schemes = ("Conv", "PS", "uDEB")
    offset = min(s.start_s for s in scenarios)
    stats = None

    def sweep() -> "dict[str, dict[str, float]]":
        nonlocal stats
        grid: "dict[str, dict[str, float]]" = {}
        for scheme in schemes:
            snapshot = prepare_survival_prefix(
                setup, scheme, offset, window_s=args.window,
                fast_forward=True,
            )
            for scenario in scenarios:
                if snapshot is not None:
                    result = resume_survival_from_snapshot(
                        setup, snapshot, scenario
                    )
                else:
                    result = run_survival(
                        setup, scheme, scenario, window_s=args.window,
                        fast_forward=True,
                    )
                grid.setdefault(scenario.name, {})[scheme] = (
                    result.survival_or_window()
                )
            if snapshot is not None:
                prefix_sim = DataCenterSimulation.restore(snapshot)
                if stats is None:
                    stats = prefix_sim.fast_forward_stats
                else:
                    stats.jumps += prefix_sim.fast_forward_stats.jumps
                    stats.steps_skipped += (
                        prefix_sim.fast_forward_stats.steps_skipped
                    )
        return grid

    start = time.perf_counter()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        grid = profiler.runcall(sweep)
        elapsed = time.perf_counter() - start
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
    else:
        grid = sweep()
        elapsed = time.perf_counter() - start

    from .experiments.common import format_table

    print(format_table(grid, value_format="{:>10.0f}"))
    print(f"\nbench wall-clock: {elapsed:.2f} s "
          f"({len(schemes)} schemes x {len(scenarios)} scenarios, "
          f"window {args.window:.0f} s, onset {args.onset:.0f} s)")
    if stats is None:
        print("fast-forward: no shared prefixes ran")
        return 1
    print(f"fast-forward: {stats.jumps} jumps, "
          f"{stats.steps_skipped} steps skipped")
    if stats.steps_skipped == 0:
        print("error: fast-forward never jumped — fast path disabled?")
        return 1
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from .experiments import fig06_two_phase, fig07_effective_attack

    fig06_two_phase.main()
    print()
    fig07_effective_attack.main()
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "survive": _cmd_survive,
        "grid": _cmd_grid,
        "report": _cmd_report,
        "demo": _cmd_demo,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
