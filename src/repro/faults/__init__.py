"""Fault injection: declarative plans, per-step injection, typed events.

The subsystem the robustness story hangs on: declare *what breaks when*
in a :class:`FaultPlan`, hand it to a
:class:`~repro.sim.datacenter.DataCenterSimulation` (or a
``SweepCell``), and the :class:`FaultInjector` drives meter dropouts,
lying SOC sensors, comm loss, battery damage, stuck ORing FETs and
mis-rated breakers through the step pipeline — deterministically, on
both backends, with every edge published as a typed ``FaultEvent``.
"""

from .injector import FaultInjector
from .spec import (
    BatteryFade,
    BreakerMisrating,
    FaultPlan,
    FaultSpec,
    SocBias,
    SocFreeze,
    TelemetryDropout,
    TelemetryNoise,
    UdebStuckOpen,
    VdebCommLoss,
)

__all__ = [
    "BatteryFade",
    "BreakerMisrating",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "SocBias",
    "SocFreeze",
    "TelemetryDropout",
    "TelemetryNoise",
    "UdebStuckOpen",
    "VdebCommLoss",
]
