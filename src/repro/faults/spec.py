"""Declarative fault specifications — the *what/when/where* of a fault.

A :class:`FaultPlan` is a picklable, validated list of
:class:`FaultSpec` dataclasses, windowed the same way attack windows
are: each spec names a time window (or an instant, for one-shot physical
damage), the racks it touches, and its fault-specific parameters. The
:class:`~repro.faults.injector.FaultInjector` turns the plan into
per-step pipeline actions and typed
:class:`~repro.sim.events.FaultEvent` publications.

Plans are deliberately dumb data: no simulator handles, no numpy arrays
— just floats, ints and tuples — so a plan can ride inside a frozen
``SweepCell`` through a process pool and derive everything random from
the cell seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from ..errors import ConfigError, FaultInjectionError

__all__ = [
    "BatteryFade",
    "BreakerMisrating",
    "FaultPlan",
    "FaultSpec",
    "SocBias",
    "SocFreeze",
    "TelemetryDropout",
    "TelemetryNoise",
    "UdebStuckOpen",
    "VdebCommLoss",
    "reject_overlapping_windows",
]


def reject_overlapping_windows(specs, plan_name: str) -> None:
    """Reject same-kind windowed specs whose windows and targets overlap.

    Two windowed specs of the same ``kind`` that are simultaneously
    active on a shared rack would silently compose last-writer-wins (a
    frozen SOC vector, a sag depth) instead of doing anything physical.
    Such plans are almost always authoring mistakes, so they fail
    eagerly with a :class:`~repro.errors.ConfigError` naming both
    windows. One-shot specs are exempt (no duration to overlap), and
    ``racks=None`` (every rack) conflicts with any target set.

    Shared by :class:`FaultPlan` and :class:`~repro.grid.spec.GridPlan`.
    """
    windowed = [
        (index, spec)
        for index, spec in enumerate(specs)
        if not spec.one_shot
    ]
    for position, (i, a) in enumerate(windowed):
        for j, b in windowed[position + 1:]:
            if a.kind != b.kind:
                continue
            if not (a.start_s < b.end_s and b.start_s < a.end_s):
                continue
            racks_a = a.racks
            racks_b = b.racks
            if (
                racks_a is not None
                and racks_b is not None
                and not set(racks_a) & set(racks_b)
            ):
                continue
            raise ConfigError(
                f"{plan_name}: {a.kind} windows "
                f"[{a.start_s:g}, {a.end_s:g}) (spec {i}) and "
                f"[{b.start_s:g}, {b.end_s:g}) (spec {j}) overlap on "
                "shared racks — overlapping same-target windows compose "
                "last-writer-wins; merge them into one spec"
            )


def _normalised_racks(racks) -> "tuple[int, ...] | None":
    """Sorted unique rack tuple, or ``None`` for "every rack"."""
    if racks is None:
        return None
    normalised = tuple(sorted({int(r) for r in racks}))
    if not normalised:
        raise FaultInjectionError("racks=() targets nothing; use None for all")
    if normalised[0] < 0:
        raise FaultInjectionError("rack indices must be non-negative")
    return normalised


class FaultSpec:
    """Base class for one declarative fault.

    Concrete specs are frozen dataclasses carrying ``start_s``/``end_s``
    (or ``at_s`` for one-shots) plus a ``racks`` tuple (``None`` = every
    rack). ``kind`` is the stable label used in :class:`FaultEvent`
    streams, journals and reports.
    """

    kind: ClassVar[str] = "fault"
    #: One-shot faults fire once at ``at_s`` and never clear.
    one_shot: ClassVar[bool] = False

    def active_at(self, time_s: float) -> bool:
        """Whether the fault is in force at ``time_s``."""
        if self.one_shot:
            return time_s >= self.at_s  # type: ignore[attr-defined]
        return self.start_s <= time_s < self.end_s  # type: ignore[attr-defined]

    def rack_tuple(self, racks: int) -> "tuple[int, ...]":
        """The concrete racks this spec touches in an ``racks``-wide cluster."""
        if self.racks is None:  # type: ignore[attr-defined]
            return tuple(range(racks))
        return self.racks  # type: ignore[attr-defined]

    def validate_for(self, racks: int) -> None:
        """Check the spec fits a cluster of ``racks`` racks."""
        targeted = self.racks  # type: ignore[attr-defined]
        if targeted is not None and targeted[-1] >= racks:
            raise FaultInjectionError(
                f"{self.kind}: rack {targeted[-1]} outside a "
                f"{racks}-rack cluster"
            )

    def _check_window(self) -> None:
        if self.one_shot:
            if self.at_s < 0.0:  # type: ignore[attr-defined]
                raise FaultInjectionError(f"{self.kind}: at_s must be >= 0")
            return
        start = self.start_s  # type: ignore[attr-defined]
        end = self.end_s  # type: ignore[attr-defined]
        if not end > start:
            raise FaultInjectionError(
                f"{self.kind}: fault window must satisfy end_s > start_s"
            )


@dataclass(frozen=True)
class TelemetryDropout(FaultSpec):
    """Power-meter readings stop arriving for the targeted racks.

    The defense layer's :class:`~repro.defense.telemetry.TelemetryView`
    holds the last value; once the TTL expires the schemes fail safe.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        racks: Affected racks, ``None`` for a full blackout.
    """

    kind: ClassVar[str] = "telemetry-dropout"

    start_s: float
    end_s: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()


@dataclass(frozen=True)
class TelemetryNoise(FaultSpec):
    """Gaussian noise on the metered rack averages (flaky sensors).

    Noise is drawn from an RNG seeded by the plan seed and the spec's
    position, so it is identical run-to-run and backend-to-backend.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        sigma_w: Noise standard deviation in watts.
        racks: Affected racks, ``None`` for all.
    """

    kind: ClassVar[str] = "telemetry-noise"

    start_s: float
    end_s: float
    sigma_w: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if self.sigma_w <= 0.0:
            raise FaultInjectionError("telemetry-noise: sigma_w must be > 0")


@dataclass(frozen=True)
class SocBias(FaultSpec):
    """The SOC sensor reads offset by ``bias`` (drifted calibration).

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        bias: Added to the sensed SOC; the result clips to ``[0, 1]``.
        racks: Affected racks, ``None`` for all.
    """

    kind: ClassVar[str] = "soc-bias"

    start_s: float
    end_s: float
    bias: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if not -1.0 <= self.bias <= 1.0:
            raise FaultInjectionError("soc-bias: bias must be in [-1, 1]")


@dataclass(frozen=True)
class SocFreeze(FaultSpec):
    """The SOC sensor freezes at whatever it read when the fault began.

    The classic stuck-sensor failure: the controller keeps allocating
    from a reading that no longer moves.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        racks: Affected racks, ``None`` for all.
    """

    kind: ClassVar[str] = "soc-freeze"

    start_s: float
    end_s: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()


@dataclass(frozen=True)
class VdebCommLoss(FaultSpec):
    """The vDEB controller loses its link to the targeted racks.

    Unreachable racks get no pool-duty allocation and keep their last
    soft limit; their local hardware (battery, supercap, breaker) keeps
    acting on real electrical state.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        racks: Unreachable racks, ``None`` for a total controller outage.
    """

    kind: ClassVar[str] = "vdeb-comm-loss"

    start_s: float
    end_s: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()


@dataclass(frozen=True)
class BatteryFade(FaultSpec):
    """One-shot permanent capacity loss (string damage, dead cell).

    Fires once at ``at_s``; the fleet's capacity shrinks by ``fade`` and
    any charge above the new caps is lost. Never "clears" — damage is
    physical.

    Attributes:
        at_s: The instant the damage lands.
        fade: Fraction of current capacity lost, in ``[0, 1)``.
        racks: Damaged racks, ``None`` for all.
    """

    kind: ClassVar[str] = "battery-fade"
    one_shot: ClassVar[bool] = True

    at_s: float
    fade: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if not 0.0 < self.fade < 1.0:
            raise FaultInjectionError("battery-fade: fade must be in (0, 1)")

    @classmethod
    def dead_string(
        cls, at_s: float, racks: "tuple[int, ...]", strings: int = 4
    ) -> "BatteryFade":
        """A dead cell takes one of ``strings`` series strings offline."""
        if strings <= 1:
            raise FaultInjectionError("dead_string needs strings >= 2")
        return cls(at_s=at_s, fade=1.0 / strings, racks=racks)


@dataclass(frozen=True)
class UdebStuckOpen(FaultSpec):
    """The uDEB ORing FET fails open: no shaving, spikes hit the feed.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        racks: Affected racks, ``None`` for all.
    """

    kind: ClassVar[str] = "udeb-stuck-open"

    start_s: float
    end_s: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()


@dataclass(frozen=True)
class BreakerMisrating(FaultSpec):
    """Breakers enforce ``factor`` times their nominal rating.

    Models mis-commissioned or drifted protection: ``factor < 1`` trips
    early on legitimate load, ``factor > 1`` lets real overloads ride.
    Overload *detection* (the effective-attack metric) keeps using the
    nominal rating — the fault is in the protection hardware, not in
    what counts as an attack.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        factor: Multiplier on the nominal trip rating, in ``(0, 4]``.
        racks: Affected rack breakers; ``None`` means every rack breaker
            *and* the cluster PDU breaker.
    """

    kind: ClassVar[str] = "breaker-misrating"

    start_s: float
    end_s: float
    factor: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if not 0.0 < self.factor <= 4.0:
            raise FaultInjectionError(
                "breaker-misrating: factor must be in (0, 4]"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated, picklable collection of fault specs.

    Spec order is semantic: fault events publish in spec order within a
    step, and the noise RNG streams key on spec position.

    Attributes:
        specs: The fault specs, applied in order.
        seed: Base seed for the plan's random streams (noise); ``None``
            defers to the simulation's configured seed.
    """

    specs: "tuple[FaultSpec, ...]" = field(default=())
    seed: "int | None" = None

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise FaultInjectionError(
                    f"fault plan entries must be FaultSpecs, got {spec!r}"
                )
        reject_overlapping_windows(specs, "fault plan")
        object.__setattr__(self, "specs", specs)

    def __len__(self) -> int:
        return len(self.specs)

    def validate_for(self, racks: int) -> None:
        """Check every spec fits a cluster of ``racks`` racks."""
        for spec in self.specs:
            spec.validate_for(racks)

    def edge_times(self) -> "tuple[float, ...]":
        """Every instant the set of active specs can change, sorted.

        Window starts, window ends, *and* one-shot ``at_s`` instants
        (which :meth:`windows` deliberately excludes). The fast-forward
        guard refuses to jump across any of these.
        """
        times: "set[float]" = set()
        for spec in self.specs:
            if spec.one_shot:
                times.add(spec.at_s)  # type: ignore[attr-defined]
            else:
                times.add(spec.start_s)  # type: ignore[attr-defined]
                times.add(spec.end_s)  # type: ignore[attr-defined]
        return tuple(sorted(times))

    def windows(self) -> "list[tuple[float, float]]":
        """The windowed specs' ``(start_s, end_s)`` pairs, in spec order.

        One-shot specs are excluded — they have no duration. Used by the
        runner to refine the step schedule around fault activity, the
        same way attack windows are.
        """
        return [
            (spec.start_s, spec.end_s)  # type: ignore[attr-defined]
            for spec in self.specs
            if not spec.one_shot
        ]
