"""Turns a :class:`~repro.faults.spec.FaultPlan` into pipeline actions.

The injector is owned by a
:class:`~repro.sim.datacenter.DataCenterSimulation` and runs as its own
pipeline stage (between demand and defense). Each step it:

1. walks the plan for window edges — a fault becoming active fires its
   one-shot physical damage (capacity fade) or arms its continuous state
   (telemetry masks, SOC sensor lies, comm loss, stuck ORing FETs,
   breaker derating), publishing a typed
   :class:`~repro.sim.events.FaultInjected`; a fault expiring heals the
   state and publishes :class:`~repro.sim.events.FaultCleared` — always
   in plan order, so event streams are deterministic and comparable
   across backends;
2. hands the simulation the sensed (possibly noised) meter arrays and
   the dropout masks used to feed the scheme's
   :class:`~repro.defense.telemetry.TelemetryView`.

Everything random (Gaussian telemetry noise) derives from the plan seed
(falling back to the simulation's config seed) and the spec's position,
so a plan replays identically — run to run, backend to backend, process
to process.

The injector's lifetime is the simulation's: one-shot faults fire once
per simulation object. Build a fresh simulation per run, as the
experiment helpers do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..sim.events import FaultCleared, FaultInjected
from .spec import (
    BatteryFade,
    BreakerMisrating,
    FaultPlan,
    SocBias,
    SocFreeze,
    TelemetryDropout,
    TelemetryNoise,
    UdebStuckOpen,
    VdebCommLoss,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..sim.datacenter import DataCenterSimulation, StepContext

__all__ = ["FaultInjector"]


class FaultInjector:
    """Per-simulation fault machinery driven by one :class:`FaultPlan`.

    Args:
        plan: The declarative plan; validated against the cluster size.
        sim: The owning simulation (scheme, bus, breakers, meters).
    """

    def __init__(self, plan: FaultPlan, sim: "DataCenterSimulation") -> None:
        racks = sim.cluster.racks
        plan.validate_for(racks)
        self._plan = plan
        self._sim = sim
        self._racks = racks
        self._active = [False] * len(plan.specs)
        seed = plan.seed if plan.seed is not None else sim.config.seed
        base_seed = 0 if seed is None else int(seed)
        # One independent, position-keyed stream per noise spec so that
        # adding a spec never perturbs another spec's draws.
        self._rngs = {
            index: np.random.default_rng((base_seed, index))
            for index, spec in enumerate(plan.specs)
            if isinstance(spec, TelemetryNoise)
        }
        # Captured true SOC vectors for active freeze specs, keyed by
        # spec position (captured at the fault's rising edge).
        self._frozen: "dict[int, np.ndarray]" = {}
        # Composed continuous state, rebuilt on any window edge.
        self._rack_ok: "np.ndarray | None" = None
        self._server_ok: "np.ndarray | None" = None
        self._active_noise: "list[int]" = []

    # ------------------------------------------------------------------ #
    # Pipeline stage                                                      #
    # ------------------------------------------------------------------ #

    def stage_faults(self, ctx: "StepContext") -> None:
        """Process fault-window edges for this step (pipeline stage)."""
        edges = False
        for index, spec in enumerate(self._plan.specs):
            active = spec.active_at(ctx.time_s)
            if active == self._active[index]:
                continue
            edges = True
            self._active[index] = active
            racks = spec.rack_tuple(self._racks)
            if active:
                self._on_activate(index, spec, ctx.time_s)
                self._sim.bus.publish(FaultInjected(
                    time_s=ctx.time_s, fault=spec.kind, racks=racks,
                ))
            else:
                self._on_clear(index)
                self._sim.bus.publish(FaultCleared(
                    time_s=ctx.time_s, fault=spec.kind, racks=racks,
                ))
        if edges:
            self._recompose()

    def _on_activate(self, index: int, spec, time_s: float) -> None:
        """Rising edge: apply one-shot damage / capture sensor state."""
        if isinstance(spec, BatteryFade):
            fade = np.zeros(self._racks)
            fade[list(spec.rack_tuple(self._racks))] = spec.fade
            self._sim.scheme.fleet.apply_capacity_fade(fade)
        elif isinstance(spec, SocFreeze):
            # The stuck sensor reports whatever the pack truly held the
            # instant it froze.
            self._frozen[index] = np.array(
                self._sim.scheme.fleet.soc_vector(), dtype=float, copy=True
            )

    def _on_clear(self, index: int) -> None:
        """Falling edge: drop per-spec captured state."""
        self._frozen.pop(index, None)

    # ------------------------------------------------------------------ #
    # Continuous fault state                                              #
    # ------------------------------------------------------------------ #

    def _mask_for(self, spec) -> np.ndarray:
        mask = np.zeros(self._racks, dtype=bool)
        mask[list(spec.rack_tuple(self._racks))] = True
        return mask

    def _recompose(self) -> None:
        """Rebuild every composed mask/vector from the active specs."""
        sim = self._sim
        view = sim.scheme.telemetry
        dropped = np.zeros(self._racks, dtype=bool)
        comm_lost = np.zeros(self._racks, dtype=bool)
        stuck = np.zeros(self._racks, dtype=bool)
        bias = np.zeros(self._racks)
        freeze_mask = np.zeros(self._racks, dtype=bool)
        frozen = np.zeros(self._racks)
        # One derate entry per breaker in bank order: racks, then any
        # mid-tier PDU breakers, then the cluster breaker. A whole-plan
        # misrating scales every tier; rack-scoped specs touch only the
        # rack entries.
        derate = np.ones(sim.topology.n_breakers)
        self._active_noise = []
        any_dropout = any_comm = any_stuck = False
        any_bias = any_freeze = any_derate = False
        for index, spec in enumerate(self._plan.specs):
            if not self._active[index]:
                continue
            if isinstance(spec, TelemetryDropout):
                dropped |= self._mask_for(spec)
                any_dropout = True
            elif isinstance(spec, TelemetryNoise):
                self._active_noise.append(index)
            elif isinstance(spec, SocBias):
                bias += np.where(self._mask_for(spec), spec.bias, 0.0)
                any_bias = True
            elif isinstance(spec, SocFreeze):
                mask = self._mask_for(spec)
                freeze_mask |= mask
                frozen = np.where(mask, self._frozen[index], frozen)
                any_freeze = True
            elif isinstance(spec, VdebCommLoss):
                comm_lost |= self._mask_for(spec)
                any_comm = True
            elif isinstance(spec, UdebStuckOpen):
                stuck |= self._mask_for(spec)
                any_stuck = True
            elif isinstance(spec, BreakerMisrating):
                if spec.racks is None:
                    derate *= spec.factor
                else:
                    derate[list(spec.racks)] *= spec.factor
                any_derate = True
        self._rack_ok = ~dropped if any_dropout else None
        self._server_ok = (
            self._rack_ok[sim.server_rack_index]
            if self._rack_ok is not None
            else None
        )
        view.set_comm_loss(comm_lost if any_comm else None)
        view.set_soc_bias(bias if any_bias else None)
        view.set_soc_freeze(
            freeze_mask if any_freeze else None,
            frozen if any_freeze else None,
        )
        shaver = getattr(sim.scheme, "shaver", None)
        if shaver is not None:
            shaver.set_stuck_open(stuck if any_stuck else None)
        elif any_stuck:
            # The fault physically exists even when the scheme fields no
            # uDEB; with no shave path to break it is inert by design.
            pass
        sim.set_breaker_derate(derate if any_derate else None)

    # ------------------------------------------------------------------ #
    # Telemetry feed                                                      #
    # ------------------------------------------------------------------ #

    def telemetry_masks(self) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """``(rack_ok, server_ok)`` observation masks (``None`` = all)."""
        return self._rack_ok, self._server_ok

    def sensed_rack_avg(self, rack_avg_w: np.ndarray) -> np.ndarray:
        """The meter vector as the sensors report it (noise applied).

        Returns the input object untouched while no noise fault is
        active, keeping the healthy path bit-identical and copy-free.
        Draws happen every step a noise spec is active — including on
        racks simultaneously dropped — so the stream position depends
        only on the step sequence, never on other faults.
        """
        if not self._active_noise:
            return rack_avg_w
        noisy = rack_avg_w.copy()
        for index in self._active_noise:
            spec = self._plan.specs[index]
            targets = list(spec.rack_tuple(self._racks))
            draw = self._rngs[index].normal(0.0, spec.sigma_w, len(targets))
            noisy[targets] = np.maximum(noisy[targets] + draw, 0.0)
        return noisy

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def plan(self) -> FaultPlan:
        """The driving plan."""
        return self._plan

    @property
    def any_active(self) -> bool:
        """True while any spec is in force."""
        return any(self._active)

    def next_edge_after(self, time_s: float) -> float:
        """Earliest fault edge strictly after ``time_s`` (``inf`` if none).

        Includes one-shot ``at_s`` instants, unlike the runner-facing
        :meth:`FaultPlan.windows`.
        """
        upcoming = [
            t for t in self._plan.edge_times() if t > time_s + 1e-9
        ]
        return min(upcoming, default=float("inf"))

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint.

        Active flags, captured freeze vectors and the noise RNG streams.
        A noise stream advances every active step, so its state can only
        fingerprint-match while no noise spec is active — which is
        exactly when skipping steps is safe.
        """
        return {
            "active": np.array(self._active, dtype=bool),
            "frozen": {
                str(k): self._frozen[k] for k in sorted(self._frozen)
            },
            "rng": {
                str(k): repr(self._rngs[k].bit_generator.state)
                for k in sorted(self._rngs)
            },
        }

    def active_specs(self) -> "tuple[int, ...]":
        """Positions of currently-active specs (diagnostics/tests)."""
        return tuple(
            index for index, on in enumerate(self._active) if on
        )
