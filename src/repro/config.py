"""Configuration dataclasses for every subsystem.

All tunables of the simulator live here as frozen dataclasses with eager
validation: an invalid configuration raises :class:`~repro.errors.ConfigError`
at construction time, before any simulation work starts.

Defaults follow the paper's evaluation setup (Section V):

* HP ProLiant DL585 G5 servers — 299 W active-idle, 521 W peak.
* 22 racks x 10 servers fed by one cluster PDU.
* A Facebook-V1-style battery cabinet per rack that sustains 50 s of full
  rack load, modelled with the kinetic battery model (KiBaM).
* Google-trace-style workload sampled every 5 minutes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .errors import ConfigError
from .units import TRACE_INTERVAL_S, wh_to_joules

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from .grid.reserve import ReservePolicy


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ServerConfig:
    """Parametric linear server power model (SPECpower-style).

    Attributes:
        idle_w: Active-idle power draw in watts.
        peak_w: Full-utilisation power draw in watts.
        dvfs_power_reduction: Fraction by which DVFS capping can reduce the
            *peak* power (the paper's PSPC scheme decreases processor
            frequency by 20 %).
        dvfs_throughput_penalty: Relative throughput lost while the DVFS cap
            is engaged. With frequency scaled by 20 % the delivered work
            drops roughly proportionally for the CPU-bound viruses studied.
    """

    idle_w: float = 299.0
    peak_w: float = 521.0
    dvfs_power_reduction: float = 0.20
    dvfs_throughput_penalty: float = 0.20

    def __post_init__(self) -> None:
        _require(self.idle_w >= 0.0, "server idle power must be non-negative")
        _require(self.peak_w > self.idle_w, "server peak power must exceed idle power")
        _require(
            0.0 <= self.dvfs_power_reduction < 1.0,
            "DVFS power reduction must be in [0, 1)",
        )
        _require(
            0.0 <= self.dvfs_throughput_penalty < 1.0,
            "DVFS throughput penalty must be in [0, 1)",
        )

    @property
    def dynamic_range_w(self) -> float:
        """Utilisation-dependent power span (peak minus idle), in watts."""
        return self.peak_w - self.idle_w


class ChargingPolicy(enum.Enum):
    """How a distributed energy backup (DEB) unit is recharged (paper §2.2).

    * ``ONLINE`` — opportunistically recharge whenever the rack has spare
      power budget.
    * ``OFFLINE`` — recharge only once state-of-charge drops below a preset
      threshold, then charge back to full.
    """

    ONLINE = "online"
    OFFLINE = "offline"


@dataclass(frozen=True)
class BatteryConfig:
    """Lead-acid rack battery cabinet modelled with KiBaM.

    The default capacity is derived from the paper's setup: a fully charged
    cabinet sustains the rack for 50 seconds at full load (10 servers x
    521 W = 5 210 W), i.e. roughly 72.4 Wh per rack.

    Attributes:
        capacity_wh: Total energy capacity in watt-hours.
        kibam_c: KiBaM capacity fraction held in the *available* well.
        kibam_k: KiBaM rate constant (1/s) governing flow from the bound to
            the available well.
        max_discharge_w: Safety ceiling on discharge power (lead-acid packs
            have a maximum C-rate; discharging faster ages them).
        max_charge_w: Ceiling on recharge power. Lead-acid recharge is
            an order of magnitude slower than discharge (a cabinet that
            empties in ~1 minute takes tens of minutes to refill).
        lvd_soc: Low-voltage-disconnect threshold. Below this state of
            charge the pack is isolated from the load (Facebook's LVD trips
            at 1.75 V/cell; we express it as an SOC fraction).
        charge_efficiency: Round-trip losses applied on the charge path.
        offline_recharge_soc: For :attr:`ChargingPolicy.OFFLINE`, recharge is
            initiated when SOC drops below this fraction.
    """

    capacity_wh: float = 72.4
    kibam_c: float = 0.75
    kibam_k: float = 0.0015
    max_discharge_w: float = 6000.0
    max_charge_w: float = 100.0
    lvd_soc: float = 0.05
    charge_efficiency: float = 0.85
    offline_recharge_soc: float = 0.25

    def __post_init__(self) -> None:
        _require(self.capacity_wh > 0.0, "battery capacity must be positive")
        _require(0.0 < self.kibam_c <= 1.0, "KiBaM c must be in (0, 1]")
        _require(self.kibam_k > 0.0, "KiBaM k must be positive")
        _require(self.max_discharge_w > 0.0, "max discharge power must be positive")
        _require(self.max_charge_w > 0.0, "max charge power must be positive")
        _require(0.0 <= self.lvd_soc < 1.0, "LVD threshold must be in [0, 1)")
        _require(
            0.0 < self.charge_efficiency <= 1.0,
            "charge efficiency must be in (0, 1]",
        )
        _require(
            self.lvd_soc <= self.offline_recharge_soc <= 1.0,
            "offline recharge threshold must lie between LVD and full",
        )

    @property
    def capacity_j(self) -> float:
        """Capacity in joules."""
        return wh_to_joules(self.capacity_wh)


@dataclass(frozen=True)
class SupercapConfig:
    """Super-capacitor bank used by the rack-level uDEB (paper §4.2.2).

    Sized for transient spike shaving: tiny energy, huge power, instant
    response, effectively unlimited cycle life. The paper's example: a 5 kW
    rack needs only ~0.35 Wh for 0.5 s of current sharing. The default here
    gives a 22-rack cluster a few seconds of full-spike absorption per rack.

    Attributes:
        capacity_wh: Usable energy between the working-voltage window.
        max_power_w: Power the ORing path can source (ESR/current limited).
        max_charge_w: Recharge power ceiling — the charger stage is sized
            far smaller than the discharge path.
        efficiency: One-way conversion efficiency through the ORing FET and
            DC/DC stage.
        response_time_s: Hardware response latency. Effectively zero; kept
            as a parameter so ablations can degrade it.
        cost_per_wh: Super-capacitor cost in $/Wh (paper quotes 10-30 $/Wh).
    """

    capacity_wh: float = 2.0
    max_power_w: float = 4000.0
    max_charge_w: float = 500.0
    efficiency: float = 0.95
    response_time_s: float = 0.0
    cost_per_wh: float = 20.0

    def __post_init__(self) -> None:
        _require(self.capacity_wh > 0.0, "supercap capacity must be positive")
        _require(self.max_power_w > 0.0, "supercap max power must be positive")
        _require(
            self.max_charge_w > 0.0, "supercap charge limit must be positive"
        )
        _require(0.0 < self.efficiency <= 1.0, "efficiency must be in (0, 1]")
        _require(self.response_time_s >= 0.0, "response time must be non-negative")
        _require(self.cost_per_wh > 0.0, "cost must be positive")

    @property
    def capacity_j(self) -> float:
        """Usable energy in joules."""
        return wh_to_joules(self.capacity_wh)


@dataclass(frozen=True)
class BreakerConfig:
    """Inverse-time circuit-breaker trip model (paper §3.1, [11]).

    Breakers tolerate brief overloads; sustained or extreme overloads trip
    within seconds. We model a thermal accumulator driven by the squared
    overload ratio plus an instantaneous (magnetic) trip threshold.

    Attributes:
        rated_w: Continuous rating in watts. Load at or below this never
            trips the breaker.
        trip_energy: Thermal budget. At a constant overload ratio ``r`` the
            breaker trips after ``trip_energy / (r^2 - 1)`` seconds; the
            default trips a 50 % overload in about 10 seconds and a 10 %
            overload in about 57 seconds.
        instant_trip_ratio: Overload ratio causing an immediate trip.
        cooldown_tau_s: Time constant of thermal-accumulator decay once the
            load returns below the rating.
    """

    rated_w: float = 1.0
    trip_energy: float = 12.0
    instant_trip_ratio: float = 3.0
    cooldown_tau_s: float = 300.0

    def __post_init__(self) -> None:
        _require(self.rated_w > 0.0, "breaker rating must be positive")
        _require(self.trip_energy > 0.0, "trip energy must be positive")
        _require(self.instant_trip_ratio > 1.0, "instant trip ratio must exceed 1")
        _require(self.cooldown_tau_s > 0.0, "cooldown tau must be positive")

    def with_rating(self, rated_w: float) -> "BreakerConfig":
        """Return a copy of this config rated at ``rated_w`` watts."""
        return BreakerConfig(
            rated_w=rated_w,
            trip_energy=self.trip_energy,
            instant_trip_ratio=self.instant_trip_ratio,
            cooldown_tau_s=self.cooldown_tau_s,
        )


@dataclass(frozen=True)
class MeterConfig:
    """Utilisation-based power metering (paper Table I).

    Data centers estimate average power from energy counters sampled at a
    fixed interval; anything faster than the interval is invisible.

    Attributes:
        interval_s: Sampling/averaging interval in seconds.
        detection_margin: Relative rise of an interval's average power over
            the expected baseline needed to flag an anomaly.
        noise_std: Relative standard deviation of benign load noise folded
            into each interval average (makes detection probabilistic, as
            observed on the paper's testbed).
    """

    interval_s: float = 600.0
    detection_margin: float = 0.04
    noise_std: float = 0.015

    def __post_init__(self) -> None:
        _require(self.interval_s > 0.0, "meter interval must be positive")
        _require(self.detection_margin > 0.0, "detection margin must be positive")
        _require(self.noise_std >= 0.0, "noise std must be non-negative")


@dataclass(frozen=True)
class CappingConfig:
    """Software power-capping loop (paper §4.2.2, [26]).

    Even accurate full-system capping takes 100-300 ms to actually lower
    power, which is why software alone cannot stop sub-second spikes.

    Attributes:
        latency_s: Delay between the decision to cap and the power actually
            dropping.
        power_reduction: Fraction of the dynamic power range removed while
            the cap is active (20 % frequency decrease in the paper's PSPC).
        throughput_penalty: Relative throughput lost while capped.
        hold_time_s: Minimum time a cap stays engaged once triggered.
    """

    latency_s: float = 0.2
    power_reduction: float = 0.20
    throughput_penalty: float = 0.20
    hold_time_s: float = 10.0

    def __post_init__(self) -> None:
        _require(self.latency_s >= 0.0, "capping latency must be non-negative")
        _require(0.0 < self.power_reduction < 1.0, "power reduction must be in (0, 1)")
        _require(
            0.0 <= self.throughput_penalty < 1.0,
            "throughput penalty must be in [0, 1)",
        )
        _require(self.hold_time_s >= 0.0, "hold time must be non-negative")


@dataclass(frozen=True)
class RackConfig:
    """One server rack: servers, battery cabinet, and rack PDU breaker.

    Attributes:
        servers: Number of servers in the rack.
        server: Per-server power model.
        battery: The rack's DEB cabinet.
        breaker: Trip-curve shape for the rack breaker; its rating is set
            from the rack's soft power limit by the topology builder.
    """

    servers: int = 10
    server: ServerConfig = field(default_factory=ServerConfig)
    battery: BatteryConfig = field(default_factory=BatteryConfig)
    breaker: BreakerConfig = field(default_factory=BreakerConfig)

    def __post_init__(self) -> None:
        _require(self.servers > 0, "a rack needs at least one server")

    @property
    def nameplate_w(self) -> float:
        """Aggregate peak (nameplate) power of the rack, ``n x P_peak``."""
        return self.servers * self.server.peak_w

    @property
    def idle_w(self) -> float:
        """Aggregate active-idle power of the rack."""
        return self.servers * self.server.idle_w


@dataclass(frozen=True)
class TopologyConfig:
    """Declarative mid-tier (row PDU) layout between cluster and racks.

    The paper's testbed uses a single cluster PDU over 22 racks; at
    production scale the cluster budget is carved into rows of PDUs, each
    feeding a contiguous block of racks behind its own breaker. Racks are
    assigned to PDUs contiguously in index order: PDU 0 feeds racks
    ``0 .. racks_per_pdu[0]-1``, PDU 1 the next block, and so on — which
    is what lets the vectorized backend use segment reductions over the
    natural rack order.

    Attributes:
        racks_per_pdu: Rack count per mid-tier PDU, in PDU order. Must sum
            to ``ClusterConfig.racks``.
        pdu_budget_fractions: Optional share of the *cluster* budget per
            PDU. ``None`` splits the budget proportionally to rack count.
            Must sum to at most 1 (a tier cannot out-budget its parent).
        pdu_breaker_margin: Mid-tier breaker rating as a multiple of the
            PDU budget (>= 1; the breaker must not trip inside budget).
    """

    racks_per_pdu: tuple[int, ...] = (22,)
    pdu_budget_fractions: tuple[float, ...] | None = None
    pdu_breaker_margin: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "racks_per_pdu", tuple(int(n) for n in self.racks_per_pdu)
        )
        _require(len(self.racks_per_pdu) > 0, "topology needs at least one PDU")
        _require(
            all(n > 0 for n in self.racks_per_pdu),
            "every PDU must feed at least one rack",
        )
        if self.pdu_budget_fractions is not None:
            object.__setattr__(
                self,
                "pdu_budget_fractions",
                tuple(float(f) for f in self.pdu_budget_fractions),
            )
            _require(
                len(self.pdu_budget_fractions) == len(self.racks_per_pdu),
                "need one budget fraction per PDU "
                f"({len(self.pdu_budget_fractions)} fractions for "
                f"{len(self.racks_per_pdu)} PDUs)",
            )
            _require(
                all(f > 0.0 for f in self.pdu_budget_fractions),
                "PDU budget fractions must be positive",
            )
            total = sum(self.pdu_budget_fractions)
            _require(
                total <= 1.0 + 1e-9,
                "tier budget exceeds parent: PDU budget fractions sum to "
                f"{total:.3f} of the cluster budget (must be <= 1)",
            )
        _require(
            self.pdu_breaker_margin >= 1.0,
            "PDU breaker margin must be >= 1",
        )

    @property
    def pdus(self) -> int:
        """Number of mid-tier PDUs."""
        return len(self.racks_per_pdu)

    @property
    def racks(self) -> int:
        """Total racks fed through this tier."""
        return sum(self.racks_per_pdu)

    def budget_shares(self) -> tuple[float, ...]:
        """Per-PDU share of the cluster budget (explicit or rack-weighted)."""
        if self.pdu_budget_fractions is not None:
            return self.pdu_budget_fractions
        total = self.racks
        return tuple(n / total for n in self.racks_per_pdu)


@dataclass(frozen=True)
class ClusterConfig:
    """Two-stage power-distribution cluster (paper Fig. 4).

    Attributes:
        racks: Number of racks under the cluster PDU.
        rack: Per-rack configuration (homogeneous cluster, as in the paper).
        pdu_budget_fraction: ``P_PDU / (n * P_r)`` — the oversubscription
            level. Must be below 1 for an oversubscribed cluster and high
            enough to cover aggregate idle power.
        rack_soft_limit_fraction: Default per-rack soft limit ``lambda_i``
            as a fraction of the rack nameplate power.
        topology: Optional mid-tier PDU layout. ``None`` keeps the paper's
            flat single-PDU tree (bit-identical to the historical model).
    """

    racks: int = 22
    rack: RackConfig = field(default_factory=RackConfig)
    pdu_budget_fraction: float = 0.83
    rack_soft_limit_fraction: float = 0.80
    topology: TopologyConfig | None = None

    def __post_init__(self) -> None:
        _require(self.racks > 0, "a cluster needs at least one rack")
        _require(
            0.0 < self.pdu_budget_fraction <= 1.0,
            "PDU budget fraction must be in (0, 1]",
        )
        _require(
            0.0 < self.rack_soft_limit_fraction <= 1.0,
            "rack soft-limit fraction must be in (0, 1]",
        )
        idle_fraction = self.rack.idle_w / self.rack.nameplate_w
        _require(
            self.pdu_budget_fraction > idle_fraction,
            "PDU budget must exceed aggregate idle power "
            f"({self.pdu_budget_fraction:.2f} <= {idle_fraction:.2f})",
        )
        if self.topology is not None:
            _require(
                self.topology.racks == self.racks,
                "rack count mismatch: topology assigns "
                f"{self.topology.racks} racks across "
                f"{self.topology.pdus} PDUs but the cluster has "
                f"{self.racks} racks",
            )
            for pdu, (count, share) in enumerate(
                zip(self.topology.racks_per_pdu, self.topology.budget_shares())
            ):
                budget = share * self.pdu_budget_w
                idle = count * self.rack.idle_w
                _require(
                    budget > idle,
                    f"PDU {pdu} budget {budget:.0f} W does not cover the "
                    f"aggregate idle power {idle:.0f} W of its {count} racks",
                )

    @property
    def total_servers(self) -> int:
        """Number of servers in the cluster."""
        return self.racks * self.rack.servers

    @property
    def nameplate_w(self) -> float:
        """Aggregate nameplate power ``n * P_r`` of all racks."""
        return self.racks * self.rack.nameplate_w

    @property
    def pdu_budget_w(self) -> float:
        """Cluster PDU power budget ``P_PDU`` in watts."""
        return self.pdu_budget_fraction * self.nameplate_w

    @property
    def rack_soft_limit_w(self) -> float:
        """Default per-rack soft limit ``lambda_i * P_r`` in watts."""
        return self.rack_soft_limit_fraction * self.rack.nameplate_w

    @property
    def pdus(self) -> int:
        """Number of mid-tier PDUs (1 when no topology is declared)."""
        return self.topology.pdus if self.topology is not None else 1

    @property
    def pdu_rack_counts(self) -> tuple[int, ...]:
        """Racks fed by each mid-tier PDU."""
        if self.topology is not None:
            return self.topology.racks_per_pdu
        return (self.racks,)

    @property
    def pdu_budgets_w(self) -> tuple[float, ...]:
        """Per-PDU power budget in watts (the whole budget when flat)."""
        if self.topology is not None:
            budget = self.pdu_budget_w
            return tuple(s * budget for s in self.topology.budget_shares())
        return (self.pdu_budget_w,)


@dataclass(frozen=True)
class PolicyConfig:
    """Thresholds for PAD's three-level hierarchical policy (paper Fig. 9).

    Attributes:
        visible_peak_margin: Relative rise of rack power over its soft limit
            that counts as a *visible peak* (VP > 0 input to the policy).
        vdeb_empty_soc: Pool SOC at or below which vDEB counts as empty.
        udeb_empty_soc: uDEB SOC at or below which it counts as empty.
        shed_ratio_cap: Maximum fraction of cluster servers Level 3 may put
            to sleep (the paper shows <= 3 % suffices).
        shed_hysteresis_s: Minimum time a shed server stays asleep.
    """

    visible_peak_margin: float = 0.0
    vdeb_empty_soc: float = 0.02
    udeb_empty_soc: float = 0.02
    shed_ratio_cap: float = 0.03
    shed_hysteresis_s: float = 300.0

    def __post_init__(self) -> None:
        _require(self.visible_peak_margin >= 0.0, "VP margin must be non-negative")
        _require(0.0 <= self.vdeb_empty_soc < 1.0, "vDEB empty SOC must be in [0, 1)")
        _require(0.0 <= self.udeb_empty_soc < 1.0, "uDEB empty SOC must be in [0, 1)")
        _require(0.0 < self.shed_ratio_cap <= 1.0, "shed ratio cap must be in (0, 1]")
        _require(self.shed_hysteresis_s >= 0.0, "shed hysteresis must be non-negative")


@dataclass(frozen=True)
class VdebConfig:
    """vDEB controller parameters (paper Algorithm 1).

    Attributes:
        ideal_discharge_fraction: ``P_ideal`` as a fraction of a battery's
            ``max_discharge_w`` — the per-rack cap that prevents accelerated
            aging during load sharing.
        rebalance_interval_s: How often the controller recomputes the
            discharge assignment.
    """

    ideal_discharge_fraction: float = 0.5
    rebalance_interval_s: float = 60.0

    def __post_init__(self) -> None:
        _require(
            0.0 < self.ideal_discharge_fraction <= 1.0,
            "ideal discharge fraction must be in (0, 1]",
        )
        _require(self.rebalance_interval_s > 0.0, "rebalance interval must be positive")


@dataclass(frozen=True)
class DataCenterConfig:
    """Top-level configuration wiring every subsystem together.

    Attributes:
        reserve: Optional battery-reserve partition
            (:class:`~repro.grid.reserve.ReservePolicy`). ``None`` —
            the default — keeps the paper's undivided battery budget
            and is bitwise-identical to builds that predate grid
            disturbance modelling.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    meter: MeterConfig = field(default_factory=MeterConfig)
    capping: CappingConfig = field(default_factory=CappingConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    vdeb: VdebConfig = field(default_factory=VdebConfig)
    supercap: SupercapConfig = field(default_factory=SupercapConfig)
    charging: ChargingPolicy = ChargingPolicy.ONLINE
    seed: int | None = None
    reserve: "ReservePolicy | None" = None
