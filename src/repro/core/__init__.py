"""The paper's core contribution: PAD policy, vDEB, uDEB, shedding, detection."""

from .detection import (
    AnomalyDetector,
    VisiblePeakDetector,
    VisiblePeakReport,
    detection_rate,
)
from .policy import (
    HierarchicalPolicy,
    INITIAL_STATE_TABLE,
    PolicyInputs,
    SecurityLevel,
)
from .shedding import LoadShedder, SheddingDecision
from .udeb import ShaveResult, UdebShaver
from .vdeb import VdebAllocation, VdebController, share_by_soc

__all__ = [
    "AnomalyDetector",
    "HierarchicalPolicy",
    "INITIAL_STATE_TABLE",
    "LoadShedder",
    "PolicyInputs",
    "SecurityLevel",
    "ShaveResult",
    "SheddingDecision",
    "UdebShaver",
    "VdebAllocation",
    "VdebController",
    "VisiblePeakDetector",
    "VisiblePeakReport",
    "detection_rate",
    "share_by_soc",
]
