"""Detection layer: visible-peak identification and spike detectability.

Two distinct questions live here:

* **Visible peaks (the VP policy input).** Sustained over-budget demand is
  plainly visible to interval metering; :class:`VisiblePeakDetector` flags
  racks whose metered average exceeds their soft limit.
* **Hidden spikes (paper Table I).** Whether a sub-second burst is
  detectable at all depends on the metering interval: the burst's energy
  is diluted into the interval average, and benign load noise drowns small
  residues. :class:`AnomalyDetector` models exactly that — an
  exponentially weighted baseline, a relative detection margin, and
  Gaussian measurement/load noise — and is the instrument behind the
  detection-rate table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MeterConfig
from ..errors import ConfigError
from ..power.meter import MeterSample
from ..rng import child_rng

#: Smoothing factor of the detector's baseline estimate. Slow on purpose:
#: operators baseline against history, not against the last interval.
_BASELINE_ALPHA = 0.2


@dataclass(frozen=True)
class VisiblePeakReport:
    """Per-update result of the visible-peak detector.

    Attributes:
        over_limit: Boolean per-rack mask of metered averages above limit.
        margin_w: Per-rack metered average minus the limit (signed).
    """

    over_limit: np.ndarray
    margin_w: np.ndarray

    @property
    def any_peak(self) -> bool:
        """True when any rack shows a visible peak (the VP>0 input)."""
        return bool(np.any(self.over_limit))


class VisiblePeakDetector:
    """Flags racks whose *metered* demand exceeds their soft limit.

    Args:
        margin: Relative tolerance above the limit before flagging
            (avoids chattering on measurement noise).
    """

    def __init__(self, margin: float = 0.0) -> None:
        if margin < 0.0:
            raise ConfigError("margin must be non-negative")
        self._margin = margin

    def evaluate(
        self, metered_avg_w: np.ndarray, soft_limits_w: np.ndarray
    ) -> VisiblePeakReport:
        """Compare metered rack averages against (1 + margin) x limits."""
        avg = np.asarray(metered_avg_w, dtype=float)
        limits = np.asarray(soft_limits_w, dtype=float)
        if avg.shape != limits.shape:
            raise ConfigError("metered averages and limits must align")
        threshold = limits * (1.0 + self._margin)
        return VisiblePeakReport(
            over_limit=avg > threshold, margin_w=avg - threshold
        )


class AnomalyDetector:
    """Interval-average anomaly detection with a learned baseline.

    Feed every completed :class:`~repro.power.meter.MeterSample`; the
    detector keeps an EWMA baseline of *normal-looking* intervals and
    flags a sample when its (noisy) average rises more than
    ``detection_margin`` above that baseline.

    Args:
        config: Metering parameters (margin, noise level).
        seed: Noise determinism seed.
    """

    def __init__(self, config: MeterConfig, seed: "int | None" = None) -> None:
        self._config = config
        self._rng = child_rng(seed, "anomaly-detector")
        self._baseline_w: "float | None" = None
        self._flagged: list[MeterSample] = []

    @property
    def baseline_w(self) -> "float | None":
        """Current learned baseline, ``None`` before the first sample."""
        return self._baseline_w

    @property
    def flagged(self) -> "list[MeterSample]":
        """Samples flagged as anomalous so far."""
        return list(self._flagged)

    def observe(self, sample: MeterSample) -> bool:
        """Ingest one interval; returns True if it looks anomalous."""
        noisy_avg = sample.average_w
        if self._config.noise_std > 0.0 and noisy_avg > 0.0:
            noisy_avg *= 1.0 + float(
                self._rng.normal(0.0, self._config.noise_std)
            )
        if self._baseline_w is None:
            self._baseline_w = noisy_avg
            return False
        threshold = self._baseline_w * (1.0 + self._config.detection_margin)
        anomalous = noisy_avg > threshold
        if anomalous:
            self._flagged.append(sample)
        else:
            self._baseline_w += _BASELINE_ALPHA * (noisy_avg - self._baseline_w)
        return anomalous

    def reset(self) -> None:
        """Forget the baseline and the flag history."""
        self._baseline_w = None
        self._flagged.clear()


def detection_rate(
    spike_times_s: "list[float]",
    flagged_samples: "list[MeterSample]",
) -> float:
    """Fraction of spikes whose covering metering interval was flagged.

    This is the Table-I metric: a spike counts as detected if *its*
    interval raised an anomaly, regardless of which spike inside the
    interval caused it.
    """
    if not spike_times_s:
        raise ConfigError("need at least one spike to rate detection")
    detected = 0
    for t in spike_times_s:
        if any(s.start_s <= t < s.end_s for s in flagged_samples):
            detected += 1
    return detected / len(spike_times_s)
