"""The uDEB spike shaver — ORing-FET semantics (paper §4.2.2).

The micro DEB is a small super-capacitor bank wired to the rack's power
bus through an ORing controller (a low-forward-voltage FET). The ORing
conducts *automatically* the instant the bus is asked for more than the
provisioned feed can give — no software in the loop, no 100-300 ms capping
latency, no metering blind spot. That hardware reflex is the only thing in
the system fast enough for sub-second hidden spikes.

Semantics per fine-grained tick:

* If the rack's residual draw (demand minus battery support) exceeds the
  protection threshold, the uDEB sources the excess, up to its power and
  energy limits.
* Otherwise it trickle-charges from whatever budget headroom exists.

The shaver is deliberately *not* used for sustained peaks: the paper
rejects that (PSU efficiency and thermal limits), and the tiny energy
capacity enforces it naturally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..battery.fleet_kernels import SupercapFleetState
from ..battery.supercap import SupercapBank
from ..config import SupercapConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class ShaveResult:
    """Outcome of one uDEB tick across the racks.

    Attributes:
        shaved_w: Per-rack power the supercaps sourced this tick.
        unshaved_w: Per-rack excess the supercaps could not cover.
    """

    shaved_w: np.ndarray
    unshaved_w: np.ndarray

    @property
    def total_shaved_w(self) -> float:
        """Cluster-wide shaved power."""
        return float(np.sum(self.shaved_w))


class UdebShaver:
    """One super-capacitor bank per rack, with automatic ORing response.

    Args:
        config: Supercap sizing shared by all racks.
        racks: Number of racks.
    """

    def __init__(self, config: SupercapConfig, racks: int) -> None:
        if racks <= 0:
            raise ConfigError("need at least one rack")
        self._config = config
        self._banks = [SupercapBank(config) for _ in range(racks)]
        self._stuck_open = np.zeros(racks, dtype=bool)
        self._any_stuck = False

    @property
    def config(self) -> SupercapConfig:
        """The per-rack supercap configuration."""
        return self._config

    @property
    def banks(self) -> "tuple[SupercapBank, ...]":
        """The per-rack banks."""
        return tuple(self._banks)

    def __len__(self) -> int:
        return len(self._banks)

    def soc_vector(self) -> np.ndarray:
        """Per-rack supercap state of charge."""
        return np.array([b.soc for b in self._banks])

    def shave_events_vector(self) -> np.ndarray:
        """Per-rack count of discharge interventions."""
        return np.array(
            [b.shave_events for b in self._banks], dtype=np.int64
        )

    def shaved_j_vector(self) -> np.ndarray:
        """Per-rack energy delivered into spikes, in joules."""
        return np.array([b.shaved_j for b in self._banks])

    @property
    def min_soc(self) -> float:
        """Lowest per-rack SOC — the policy engine's uDEB-health input."""
        return float(np.min(self.soc_vector()))

    @property
    def pool_soc(self) -> float:
        """Aggregate supercap state of charge."""
        total_cap = sum(b.capacity_j for b in self._banks)
        if total_cap == 0.0:
            return 0.0
        return sum(b.charge_j for b in self._banks) / total_cap

    def set_stuck_open(self, mask: "np.ndarray | None") -> None:
        """Fail the ORing FET open on masked racks (``None`` heals all).

        A stuck-open FET cannot conduct: the bank never shaves, so the
        spike rides the utility feed. The charger is a separate path and
        keeps working — the bank sits full and useless.
        """
        if mask is None:
            self._stuck_open[:] = False
            self._any_stuck = False
            return
        stuck = np.asarray(mask, dtype=bool)
        if stuck.shape != (len(self._banks),):
            raise ConfigError("need one stuck-open entry per rack")
        self._stuck_open = stuck.copy()
        self._any_stuck = bool(stuck.any())

    @property
    def stuck_open(self) -> np.ndarray:
        """Per-rack stuck-open ORing-FET fault state."""
        return self._stuck_open.copy()

    def shave(self, excess_w: np.ndarray, dt: float) -> ShaveResult:
        """Source per-rack ``excess_w`` from the supercaps for ``dt``.

        The ORing conducts only when there is excess; zero-excess racks are
        untouched (charging is a separate, explicit step). A stuck-open
        FET never conducts: its excess goes unshaved.
        """
        excess = np.asarray(excess_w, dtype=float)
        if excess.shape != (len(self._banks),):
            raise ConfigError("need one excess entry per rack")
        shaved = np.zeros_like(excess)
        for i, bank in enumerate(self._banks):
            if excess[i] > 0.0 and not self._stuck_open[i]:
                shaved[i] = bank.discharge(float(excess[i]), dt)
        return ShaveResult(shaved_w=shaved, unshaved_w=excess - shaved)

    def recharge(self, headroom_w: np.ndarray, dt: float) -> np.ndarray:
        """Trickle-charge each bank from its rack's budget headroom.

        Returns:
            Per-rack bus power actually drawn for charging.
        """
        headroom = np.asarray(headroom_w, dtype=float)
        if headroom.shape != (len(self._banks),):
            raise ConfigError("need one headroom entry per rack")
        drawn = np.zeros_like(headroom)
        for i, bank in enumerate(self._banks):
            if headroom[i] > 0.0:
                drawn[i] = bank.charge(float(headroom[i]), dt)
        return drawn

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint."""
        bank_states = [b.ff_state() for b in self._banks]
        state = {
            key: np.array([s[key] for s in bank_states])
            for key in bank_states[0]
        }
        state["stuck_open"] = self._stuck_open
        return state

    def reset(self) -> None:
        """Refill every bank."""
        for bank in self._banks:
            bank.reset()


class VectorUdebShaver:
    """Array-backed drop-in for :class:`UdebShaver`.

    Wraps a :class:`~repro.battery.fleet_kernels.SupercapFleetState` so
    dispatch sees the same shave/recharge interface whichever backend the
    scheme was built with. The per-bank object view (``banks``) of the
    scalar shaver is not provided — use the vector accessors.
    """

    def __init__(self, config: SupercapConfig, racks: int) -> None:
        self._state = SupercapFleetState(config, racks)
        self._stuck_open = np.zeros(racks, dtype=bool)
        self._any_stuck = False

    @property
    def config(self) -> SupercapConfig:
        """The per-rack supercap configuration."""
        return self._state.config

    @property
    def state(self) -> SupercapFleetState:
        """The underlying array kernel (read for tests/metrics)."""
        return self._state

    def __len__(self) -> int:
        return len(self._state)

    def soc_vector(self) -> np.ndarray:
        """Per-rack supercap state of charge."""
        return self._state.soc_vector()

    def shave_events_vector(self) -> np.ndarray:
        """Per-rack count of discharge interventions."""
        return self._state.shave_events

    def shaved_j_vector(self) -> np.ndarray:
        """Per-rack energy delivered into spikes, in joules."""
        return self._state.shaved_j

    @property
    def min_soc(self) -> float:
        """Lowest per-rack SOC — the policy engine's uDEB-health input."""
        return float(np.min(self._state.soc_vector()))

    @property
    def pool_soc(self) -> float:
        """Aggregate supercap state of charge (sequential sum, matching
        the per-bank oracle)."""
        charge = self._state.charge_j
        total_cap = sum([self._state.config.capacity_j] * len(self._state))
        if total_cap == 0.0:
            return 0.0
        return float(sum(charge.tolist())) / total_cap

    def set_stuck_open(self, mask: "np.ndarray | None") -> None:
        """Fail the ORing FET open on masked racks (``None`` heals all)."""
        if mask is None:
            self._stuck_open[:] = False
            self._any_stuck = False
            return
        stuck = np.asarray(mask, dtype=bool)
        if stuck.shape != (len(self._state),):
            raise ConfigError("need one stuck-open entry per rack")
        self._stuck_open = stuck.copy()
        self._any_stuck = bool(stuck.any())

    @property
    def stuck_open(self) -> np.ndarray:
        """Per-rack stuck-open ORing-FET fault state."""
        return self._stuck_open.copy()

    def shave(self, excess_w: np.ndarray, dt: float) -> ShaveResult:
        """Source per-rack ``excess_w`` from the supercaps for ``dt``."""
        excess = np.asarray(excess_w, dtype=float)
        conducted = (
            np.where(self._stuck_open, 0.0, excess)
            if self._any_stuck
            else excess
        )
        shaved = self._state.shave(conducted, dt)
        return ShaveResult(shaved_w=shaved, unshaved_w=excess - shaved)

    def recharge(self, headroom_w: np.ndarray, dt: float) -> np.ndarray:
        """Trickle-charge each bank from its rack's budget headroom."""
        return self._state.recharge(np.asarray(headroom_w, dtype=float), dt)

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint."""
        state = self._state.ff_state()
        state["stuck_open"] = self._stuck_open
        return state

    def reset(self) -> None:
        """Refill every bank."""
        self._state.reset()


def make_shaver(
    backend: str, config: SupercapConfig, racks: int
) -> "UdebShaver | VectorUdebShaver":
    """Build the uDEB shaver for a backend (``scalar`` | ``vectorized``)."""
    if backend == "scalar":
        return UdebShaver(config, racks)
    if backend == "vectorized":
        return VectorUdebShaver(config, racks)
    raise ConfigError(f"unknown shaver backend: {backend!r}")
