"""The vDEB controller — paper Algorithm 1, two-level load sharing.

Rather than treating each rack's battery as a private backup, PAD pools
them into a *virtual DEB*: the controller decides how much every battery
discharges so that (a) the cluster-wide shaving requirement is met and
(b) no battery is driven disproportionately low — SOC-proportional
discharge with a per-rack ceiling ``P_ideal`` that protects battery life.

A battery physically sits on its own rack's DC bus, so "sharing" is
indirect: a high-SOC rack discharges locally (cutting its utility draw),
freeing cluster budget that the intelligent PDU's soft limits hand to the
needy rack. The controller therefore returns both a discharge vector and
the matching soft-limit assignment.

Paper Algorithm 1, faithfully:

1. If the required shaving power is large (saturates the ideal rate on
   every rack), discharge the fleet evenly at ``P_ideal``.
2. Otherwise sort racks by SOC descending; racks whose SOC-proportional
   share would exceed ``P_ideal`` are pinned at ``P_ideal`` and removed
   from the proportional pool; the remainder share the rest in proportion
   to SOC. (Line 14 of the listing reads ``Pshave -= Pideal / N``; we take
   the algebraically consistent reading ``Pshave -= Pideal``, matching the
   invariant that assignments sum to the original requirement.)

Physical caps applied after the sharing step: a rack cannot discharge
more than its own load, nor more than its pack's deliverable power, and a
disconnected (LVD) pack contributes nothing. Shortfall after capping is
redistributed over racks that still have headroom.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import VdebConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class VdebAllocation:
    """Result of one controller decision.

    Attributes:
        discharge_w: Per-rack battery discharge assignment.
        shave_w: The cluster shaving requirement that was targeted.
        satisfied: True when the assignment covers the requirement; False
            means the pool is physically unable to (Level-3 territory).
    """

    discharge_w: np.ndarray
    shave_w: float
    satisfied: bool

    @property
    def total_w(self) -> float:
        """Total assigned discharge power."""
        return float(np.sum(self.discharge_w))


def share_by_soc(
    soc: np.ndarray, shave_w: float, p_ideal_w: float
) -> np.ndarray:
    """The core of Algorithm 1: SOC-proportional shares capped at P_ideal.

    Args:
        soc: Per-rack state of charge.
        shave_w: Total power to assign.
        p_ideal_w: Per-rack ceiling.

    Returns:
        Per-rack assignment summing to ``min(shave_w, n * p_ideal_w)``
        (up to racks with zero SOC, which get nothing).
    """
    if p_ideal_w <= 0.0:
        raise ConfigError("P_ideal must be positive")
    if shave_w < 0.0:
        raise ConfigError("shave power must be non-negative")
    soc = np.asarray(soc, dtype=float)
    n = soc.size
    assignment = np.zeros(n)
    if shave_w == 0.0:
        return assignment
    # Algorithm 1 line 6: saturated case — even usage at the ceiling.
    if shave_w >= n * p_ideal_w:
        assignment[:] = p_ideal_w
        return assignment
    # Lines 9-18: pin the highest-SOC racks whose proportional share
    # overflows P_ideal, then share the remainder proportionally.
    order = np.argsort(-soc, kind="stable")  # quicksort desc. by SOC
    soc_total = float(np.sum(soc))
    remaining = shave_w
    pinned = np.zeros(n, dtype=bool)
    for rank in range(n):
        rack = order[rank]
        if soc_total <= 0.0 or remaining <= 0.0:
            break
        share = soc[rack] / soc_total * remaining
        if share <= p_ideal_w:
            break
        assignment[rack] = p_ideal_w
        pinned[rack] = True
        soc_total -= soc[rack]
        remaining -= p_ideal_w
    if soc_total > 0.0 and remaining > 0.0:
        free = ~pinned
        assignment[free] = soc[free] / soc_total * remaining
    return assignment


class VdebController:
    """Stateful vDEB controller with physical-cap redistribution.

    Args:
        config: Controller parameters (``P_ideal`` fraction, cadence).
        max_discharge_w: The pack-level discharge ceiling that, scaled by
            ``ideal_discharge_fraction``, gives ``P_ideal``.
    """

    def __init__(self, config: VdebConfig, max_discharge_w: float) -> None:
        if max_discharge_w <= 0.0:
            raise ConfigError("max discharge power must be positive")
        self._config = config
        self._p_ideal_w = config.ideal_discharge_fraction * max_discharge_w

    @property
    def config(self) -> VdebConfig:
        """The controller parameters."""
        return self._config

    @property
    def p_ideal_w(self) -> float:
        """The per-rack ideal discharge ceiling in watts."""
        return self._p_ideal_w

    def allocate(
        self,
        soc: np.ndarray,
        rack_demand_w: np.ndarray,
        deliverable_w: np.ndarray,
        shave_w: float,
    ) -> VdebAllocation:
        """Assign per-rack discharge covering ``shave_w`` if possible.

        Args:
            soc: Per-rack battery state of charge.
            rack_demand_w: Per-rack electrical demand ``p_i`` — a battery
                cannot discharge more than its own rack consumes.
            deliverable_w: Per-rack maximum deliverable battery power this
                step (zero for LVD-disconnected packs).
            shave_w: Cluster-level power that must come from batteries.
        """
        soc = np.asarray(soc, dtype=float)
        demand = np.asarray(rack_demand_w, dtype=float)
        deliverable = np.asarray(deliverable_w, dtype=float)
        if not (soc.shape == demand.shape == deliverable.shape):
            raise ConfigError("per-rack vectors must share one shape")
        if shave_w <= 0.0:
            return VdebAllocation(
                discharge_w=np.zeros(soc.shape), shave_w=0.0, satisfied=True
            )
        caps = np.minimum(demand, deliverable)
        caps = np.minimum(caps, self._p_ideal_w)
        caps = np.maximum(caps, 0.0)
        assignment = np.minimum(share_by_soc(soc, shave_w, self._p_ideal_w), caps)
        # Redistribute shortfall over racks with remaining cap headroom,
        # still SOC-proportionally, until covered or no headroom remains.
        for _ in range(soc.size):
            shortfall = shave_w - float(np.sum(assignment))
            if shortfall <= 1e-9:
                break
            headroom = caps - assignment
            open_mask = headroom > 1e-12
            if not np.any(open_mask):
                break
            weights = np.where(open_mask, np.maximum(soc, 1e-12), 0.0)
            extra = weights / float(np.sum(weights)) * shortfall
            assignment = np.minimum(assignment + extra, caps)
        total = float(np.sum(assignment))
        return VdebAllocation(
            discharge_w=assignment,
            shave_w=shave_w,
            satisfied=total >= shave_w - 1e-6,
        )

    def soft_limits_for(
        self,
        rack_demand_w: np.ndarray,
        discharge_w: np.ndarray,
        pdu_budget_w: float,
        floor_w: "float | np.ndarray",
        ceiling_w: float,
        margin_w: float = 0.0,
    ) -> np.ndarray:
        """Soft limits matching an allocation (the iPDU half of sharing).

        Each rack's limit tracks its expected utility draw ``p_i - b_i``
        plus a charging margin, bounded by a floor (keep idle racks alive;
        PAD also uses per-rack floors to pin spike-suspect racks high) and
        the branch ceiling, then scaled down if the sum would exceed the
        cluster budget (Eq. 2).

        Args:
            margin_w: Headroom added per rack so recharge paths (battery
                trickle, uDEB top-up) are not starved by an exact-fit
                limit.
        """
        demand = np.asarray(rack_demand_w, dtype=float)
        discharge = np.asarray(discharge_w, dtype=float)
        floor = np.broadcast_to(
            np.asarray(floor_w, dtype=float), demand.shape
        )
        if margin_w < 0.0:
            raise ConfigError("margin must be non-negative")
        if np.any(floor < 0.0) or np.any(ceiling_w <= floor):
            raise ConfigError("need 0 <= floor < ceiling for soft limits")
        limits = np.clip(demand - discharge + margin_w, floor, ceiling_w)
        total = float(np.sum(limits))
        if total > pdu_budget_w:
            limits = limits * (pdu_budget_w / total)
            limits = np.maximum(limits, 0.0)
        return limits
