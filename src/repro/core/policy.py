"""PAD's three-level hierarchical security policy (paper §4.1, Fig. 9).

Power-management strategies are classified into emergency levels:

* **Level 1 — Normal.** Shave visible peaks with the vDEB pool.
* **Level 2 — Minor Incident.** The uDEB is the active defense against
  hidden spikes; the manager watches its health and collects load
  information for inspection.
* **Level 3 — Emergency.** Both backups exhausted: shed or migrate load.

Three inputs drive the machine: whether the vDEB pool holds energy,
whether the uDEB holds energy, and whether a visible peak (VP) is
currently identified. The initial-state table and the transition arrows
follow paper Fig. 9 exactly, including the deliberately unspecified
``[vDEB>0, uDEB==0]`` entry, which the operator resolves by choosing a
security posture (lenient -> Level 1, strict -> Level 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError


class SecurityLevel(enum.IntEnum):
    """PAD emergency levels. Higher is worse."""

    NORMAL = 1
    MINOR_INCIDENT = 2
    EMERGENCY = 3


@dataclass(frozen=True)
class PolicyInputs:
    """The three observed inputs of the Fig. 9 state machine.

    Attributes:
        vdeb_available: True when the virtual DEB pool holds usable energy.
        udeb_available: True when the micro DEB holds usable energy.
        visible_peak: True when a visible power peak is identified (VP>0).
    """

    vdeb_available: bool
    udeb_available: bool
    visible_peak: bool


#: Initial-state table of paper Fig. 9, keyed by
#: (vDEB>0, uDEB>0, VP>0). The ``None`` entries are the posture-dependent
#: rows resolved by :class:`HierarchicalPolicy`'s ``strict`` flag.
INITIAL_STATE_TABLE: "dict[tuple[bool, bool, bool], SecurityLevel | None]" = {
    (False, False, False): SecurityLevel.EMERGENCY,
    (False, False, True): SecurityLevel.EMERGENCY,
    (False, True, False): SecurityLevel.MINOR_INCIDENT,
    (False, True, True): SecurityLevel.EMERGENCY,
    (True, False, False): None,
    (True, False, True): None,
    (True, True, False): SecurityLevel.NORMAL,
    (True, True, True): SecurityLevel.NORMAL,
}


class HierarchicalPolicy:
    """The Fig. 9 state machine.

    Args:
        strict: Posture for the unspecified ``[vDEB>0, uDEB==0]`` rows —
            ``True`` starts them at Level 2 (treat a drained uDEB as an
            incident), ``False`` at Level 1. The paper leaves this to "the
            level of security requirement of the organization".
    """

    def __init__(self, strict: bool = True) -> None:
        self._strict = strict
        self._level: "SecurityLevel | None" = None
        self._transitions: list[tuple[SecurityLevel, SecurityLevel]] = []

    @property
    def strict(self) -> bool:
        """The configured security posture."""
        return self._strict

    @property
    def level(self) -> SecurityLevel:
        """Current emergency level.

        Raises:
            ConfigError: if the policy has never been updated.
        """
        if self._level is None:
            raise ConfigError("policy has not been initialised; call update()")
        return self._level

    @property
    def transitions(self) -> "list[tuple[SecurityLevel, SecurityLevel]]":
        """History of (from, to) level changes."""
        return list(self._transitions)

    def peek(self) -> "SecurityLevel | None":
        """Current level, or ``None`` before the first :meth:`update`.

        The non-raising companion of :attr:`level`, for observers (event
        publishers, dashboards) that must not disturb the machine.
        """
        return self._level

    def initial_state(self, inputs: PolicyInputs) -> SecurityLevel:
        """Initial level for ``inputs`` per the Fig. 9 table."""
        key = (inputs.vdeb_available, inputs.udeb_available, inputs.visible_peak)
        level = INITIAL_STATE_TABLE[key]
        if level is None:
            level = (
                SecurityLevel.MINOR_INCIDENT
                if self._strict
                else SecurityLevel.NORMAL
            )
        return level

    def update(self, inputs: PolicyInputs) -> SecurityLevel:
        """Advance the machine one observation and return the new level.

        The first call seeds the state from the initial-state table; later
        calls follow the transition arrows:

        * L1 -> L2 when the uDEB empties;
        * L2 -> L3 when the vDEB pool empties;
        * L3 -> L2 when the vDEB pool is recharged;
        * L2 -> L1 when the uDEB is recharged.
        """
        if self._level is None:
            self._level = self.initial_state(inputs)
            return self._level
        before = self._level
        if self._level is SecurityLevel.NORMAL:
            if not inputs.udeb_available:
                self._level = SecurityLevel.MINOR_INCIDENT
            if not inputs.vdeb_available:
                # Both empty at once: fall straight through to emergency.
                self._level = SecurityLevel.EMERGENCY
        elif self._level is SecurityLevel.MINOR_INCIDENT:
            if not inputs.vdeb_available:
                self._level = SecurityLevel.EMERGENCY
            elif inputs.udeb_available:
                self._level = SecurityLevel.NORMAL
        else:  # EMERGENCY
            if inputs.vdeb_available:
                self._level = SecurityLevel.MINOR_INCIDENT
                if inputs.udeb_available:
                    self._level = SecurityLevel.NORMAL
        if self._level is not before:
            self._transitions.append((before, self._level))
        return self._level

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint.

        The transition *history* is excluded: it only grows when the
        level changes, and a level change publishes an event, which
        refuses the jump anyway.
        """
        return {"level": None if self._level is None else int(self._level)}

    def reset(self) -> None:
        """Forget all state (next update re-seeds from the initial table)."""
        self._level = None
        self._transitions.clear()
