"""Level-3 load shedding (paper §4.1, §6.1, Fig. 14).

When both backup layers are exhausted and demand still exceeds the budget,
PAD "puts some servers into sleeping/hibernating states or triggers load
migration from vulnerable racks to dependable racks". The paper's result:
shedding *less than 3 %* of the cluster's servers is enough to flatten the
battery-usage map under cluster-wide surges.

Selection uses *metered* utilisation — the shedder sees what monitoring
sees. That has a security consequence the paper leans on: a Phase-I
visible peak makes the attacker's own nodes the hottest metered servers,
so shedding tends to disrupt the attack ("shutting down some vulnerable
loads may disrupt the attack process"); Phase-II hidden spikes, being
invisible to metering, are for the uDEB, not the shedder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import PolicyConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class SheddingDecision:
    """Outcome of one shedder update.

    Attributes:
        asleep: Boolean per-server mask after the update.
        newly_shed: Server ids put to sleep this update.
        newly_released: Server ids woken this update.
        target_reduction_w: Demand reduction the shedder aimed for.
    """

    asleep: np.ndarray
    newly_shed: tuple[int, ...]
    newly_released: tuple[int, ...]
    target_reduction_w: float

    @property
    def shed_count(self) -> int:
        """Servers currently asleep."""
        return int(np.sum(self.asleep))

    @property
    def changed(self) -> bool:
        """True when this update shed or released at least one server."""
        return bool(self.newly_shed or self.newly_released)


class LoadShedder:
    """Hysteretic, capped, metered-utilisation-driven server shedder.

    Args:
        config: Policy parameters (ratio cap, hysteresis).
        servers: Cluster size.
        per_server_saving_w: Demand reduction gained by sleeping one
            server (its dynamic power plus most of its idle power).
        critical: Optional boolean mask of servers that must never be
            shed (the "non-critical loads only" rule).
    """

    def __init__(
        self,
        config: PolicyConfig,
        servers: int,
        per_server_saving_w: float,
        critical: "np.ndarray | None" = None,
    ) -> None:
        if servers <= 0:
            raise ConfigError("need at least one server")
        if per_server_saving_w <= 0.0:
            raise ConfigError("per-server saving must be positive")
        self._config = config
        self._servers = servers
        self._saving_w = per_server_saving_w
        self._max_shed = max(1, int(config.shed_ratio_cap * servers))
        self._asleep = np.zeros(servers, dtype=bool)
        self._shed_at = np.full(servers, -np.inf)
        if critical is None:
            self._critical = np.zeros(servers, dtype=bool)
        else:
            critical = np.asarray(critical, dtype=bool)
            if critical.shape != (servers,):
                raise ConfigError("critical mask must have one entry per server")
            self._critical = critical.copy()

    @property
    def max_shed(self) -> int:
        """Hard cap on simultaneously shed servers (the <=3 % rule)."""
        return self._max_shed

    @property
    def asleep(self) -> np.ndarray:
        """Current sleep mask (copy)."""
        return self._asleep.copy()

    @property
    def shed_ratio(self) -> float:
        """Fraction of the cluster currently asleep."""
        return float(np.sum(self._asleep)) / self._servers

    @property
    def any_asleep(self) -> bool:
        """True when at least one server is currently shed.

        With nothing asleep and no required reduction, :meth:`update`
        is a structural no-op — callers on hot paths use this to skip
        the call.
        """
        return bool(self._asleep.any())

    def update(
        self,
        now_s: float,
        metered_util: np.ndarray,
        required_reduction_w: float,
        prefer: "np.ndarray | None" = None,
    ) -> SheddingDecision:
        """Recompute the sleep set.

        Args:
            now_s: Current time (drives hysteresis).
            metered_util: Per-server utilisation *as seen by monitoring* —
                interval averages, not instantaneous truth.
            required_reduction_w: Demand the cluster must drop to get back
                inside its budget; zero or negative releases servers.
            prefer: Optional per-server mask of servers whose relief is
                load-bearing *where they sit* — e.g. servers on a
                sag-drained rack about to brown out against a derated
                breaker. Preferred servers shed before hotter ones
                elsewhere, and the cap-reached rotation swaps toward
                them unconditionally (the preference itself is the
                justification; raw wattage is not). ``None`` keeps the
                historical hottest-first behaviour bit-for-bit.
        """
        util = np.asarray(metered_util, dtype=float)
        if util.shape != (self._servers,):
            raise ConfigError("need one metered utilisation per server")
        if prefer is not None:
            prefer = np.asarray(prefer, dtype=bool)
            if prefer.shape != (self._servers,):
                raise ConfigError("need one preference flag per server")
            if not prefer.any():
                prefer = None
        newly_shed: list[int] = []
        newly_released: list[int] = []
        shed_now = int(np.sum(self._asleep))
        # ``required_reduction_w`` is measured on a cluster where the
        # current sleepers are already dark; reason about the
        # counterfactual excess so shedding does not mask its own trigger
        # and oscillate.
        effective_w = required_reduction_w + shed_now * self._saving_w
        if effective_w > 0.0:
            target = min(
                int(np.ceil(effective_w / self._saving_w)), self._max_shed
            )
        else:
            target = 0
        if target > shed_now:
            candidates = np.nonzero(~self._asleep & ~self._critical)[0]
            # Hottest metered servers first — they buy the most relief.
            order = candidates[np.argsort(-util[candidates], kind="stable")]
            if prefer is not None:
                preferred = prefer[order]
                order = np.concatenate(
                    [order[preferred], order[~preferred]]
                )
            for server in order[: target - shed_now]:
                self._asleep[server] = True
                self._shed_at[server] = now_s
                newly_shed.append(int(server))
        elif target < shed_now:
            # Release surplus sleepers whose hysteresis window has
            # elapsed, coldest first.
            sleeping = np.nonzero(self._asleep)[0]
            eligible = [
                int(s)
                for s in sleeping
                if now_s - self._shed_at[s] >= self._config.shed_hysteresis_s
            ]
            eligible.sort(key=lambda s: util[s])
            for server in eligible[: shed_now - target]:
                self._asleep[server] = False
                newly_released.append(server)
        elif required_reduction_w > 0.0:
            # The cap is reached but the measured excess persists: the
            # current sleep set is not delivering (the hot load moved).
            # Rotate — swap the coldest eligible sleeper for a hotter
            # awake server, one per update to avoid thrash.
            sleeping = np.nonzero(self._asleep)[0]
            eligible = [
                int(s)
                for s in sleeping
                if now_s - self._shed_at[s] >= self._config.shed_hysteresis_s
            ]
            awake = np.nonzero(~self._asleep & ~self._critical)[0]
            preferred_awake = (
                awake[prefer[awake]] if prefer is not None else awake[:0]
            )
            if preferred_awake.size:
                # A preferred server is still awake: swap it in for the
                # coldest non-preferred sleeper, unconditionally — the
                # relief is needed where the preferred server sits, not
                # where the watts are largest. Release hysteresis is
                # bypassed: it exists to stop flapping, and an imminent
                # brown-out outranks flap protection.
                swappable = [
                    int(s) for s in sleeping if not prefer[s]
                ]
                if swappable:
                    coldest = min(swappable, key=lambda s: util[s])
                    hottest = int(
                        preferred_awake[np.argmax(util[preferred_awake])]
                    )
                    self._asleep[coldest] = False
                    newly_released.append(coldest)
                    self._asleep[hottest] = True
                    self._shed_at[hottest] = now_s
                    newly_shed.append(hottest)
            elif eligible and awake.size:
                coldest = min(eligible, key=lambda s: util[s])
                hottest = int(awake[np.argmax(util[awake])])
                if util[hottest] > util[coldest]:
                    self._asleep[coldest] = False
                    newly_released.append(coldest)
                    self._asleep[hottest] = True
                    self._shed_at[hottest] = now_s
                    newly_shed.append(hottest)
        return SheddingDecision(
            asleep=self._asleep.copy(),
            newly_shed=tuple(newly_shed),
            newly_released=tuple(newly_released),
            target_reduction_w=max(0.0, required_reduction_w),
        )

    def ff_state(self, now_s: float) -> dict:
        """Evolving state for the fast-forward fingerprint.

        ``_shed_at`` holds absolute times, so it is normalised to ages
        relative to ``now_s`` (never-shed servers sit at ``+inf`` age,
        which compares equal across windows).
        """
        return {
            "asleep": self._asleep,
            "shed_age_s": now_s - self._shed_at,
        }

    def ff_shift_times(self, delta_s: float) -> None:
        """Shift absolute-time state after a fast-forward jump."""
        self._shed_at += delta_s

    def reset(self) -> None:
        """Wake everything and clear hysteresis state."""
        self._asleep[:] = False
        self._shed_at[:] = -np.inf
