"""Electrical substrate: servers, PSUs, breakers, PDUs, metering, capping."""

from .breaker import CircuitBreaker, TripEvent
from .breaker_kernels import (
    BreakerBankState,
    ScalarBreakerBank,
    make_breaker_bank,
)
from .capping import CapController
from .meter import MeterSample, PowerMeter
from .oversubscription import (
    OversubscriptionPlan,
    capacity_saving_dollars,
    capacity_saving_w,
    demand_proportional_split,
    even_split,
)
from .pdu import ClusterPDU, RackPDU
from .psu import PSUEfficiencyCurve, ServerPSU
from .server import ServerPowerModel, validate_budget
from .topology import (
    CLUSTER_BREAKER_ID,
    CompiledTopology,
    PowerTree,
    compile_topology,
    pdu_breaker_id,
)
from .ups import (
    CentralUps,
    CentralUpsConfig,
    annual_conversion_loss_kwh,
    distributed_backup_saving_kwh,
)

__all__ = [
    "BreakerBankState",
    "CLUSTER_BREAKER_ID",
    "CapController",
    "CompiledTopology",
    "CentralUps",
    "CentralUpsConfig",
    "CircuitBreaker",
    "ClusterPDU",
    "MeterSample",
    "OversubscriptionPlan",
    "PSUEfficiencyCurve",
    "PowerMeter",
    "PowerTree",
    "RackPDU",
    "ScalarBreakerBank",
    "ServerPSU",
    "ServerPowerModel",
    "TripEvent",
    "annual_conversion_loss_kwh",
    "compile_topology",
    "make_breaker_bank",
    "pdu_breaker_id",
    "capacity_saving_dollars",
    "capacity_saving_w",
    "demand_proportional_split",
    "distributed_backup_saving_kwh",
    "even_split",
    "validate_budget",
]
