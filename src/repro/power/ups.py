"""Centralized UPS model — the conventional backup the paper replaces.

Paper §2.1: conventional data centers rely on a bulk double-conversion
UPS between the utility feed and the PDUs. Two properties matter for the
DEB-vs-UPS comparison the paper's background draws:

* **Double conversion loss.** An online UPS converts AC→DC→AC even when
  the utility is healthy, taxing every watt the data center draws.
* **Single point of failure.** One central unit backs the whole facility;
  it either carries everything or nothing — it cannot cover a *fraction*
  of racks the way distributed cabinets can ("A central UPS system cannot
  be used to support a fraction of data center servers").

This module quantifies both, so the efficiency claims the paper cites
(Microsoft's up-to-15 % PUE improvement from distributed backup) can be
reproduced as a first-order energy comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import clamp


@dataclass(frozen=True)
class CentralUpsConfig:
    """A bulk online (double-conversion) UPS.

    Attributes:
        rated_w: Power rating; the whole facility must fit under it.
        conversion_efficiency: One-way conversion efficiency; applied
            twice (AC->DC and DC->AC) while on line power.
        eco_mode: Bypass mode — conversion losses drop to the bypass
            switch loss, at the cost of transfer-time risk.
        bypass_efficiency: Efficiency in eco/bypass mode.
        autonomy_s: Full-load battery autonomy.
        failure_rate_per_year: Crude availability input for the SPOF
            comparison.
    """

    rated_w: float
    conversion_efficiency: float = 0.94
    eco_mode: bool = False
    bypass_efficiency: float = 0.99
    autonomy_s: float = 600.0
    failure_rate_per_year: float = 0.05

    def __post_init__(self) -> None:
        if self.rated_w <= 0.0:
            raise ConfigError("UPS rating must be positive")
        if not 0.0 < self.conversion_efficiency <= 1.0:
            raise ConfigError("conversion efficiency must be in (0, 1]")
        if not 0.0 < self.bypass_efficiency <= 1.0:
            raise ConfigError("bypass efficiency must be in (0, 1]")
        if self.autonomy_s <= 0.0:
            raise ConfigError("autonomy must be positive")
        if self.failure_rate_per_year < 0.0:
            raise ConfigError("failure rate must be non-negative")


class CentralUps:
    """A facility-level double-conversion UPS.

    The unit is all-or-nothing: :meth:`on_battery` switches the entire
    downstream load to stored energy, and :meth:`input_power` reports the
    utility draw including conversion losses.
    """

    def __init__(self, config: CentralUpsConfig, initial_soc: float = 1.0) -> None:
        if not 0.0 <= initial_soc <= 1.0:
            raise ConfigError("initial SOC must be in [0, 1]")
        self._config = config
        self._capacity_j = config.rated_w * config.autonomy_s
        self._charge_j = self._capacity_j * initial_soc
        self._on_battery = False

    @property
    def config(self) -> CentralUpsConfig:
        """The UPS parameters."""
        return self._config

    @property
    def soc(self) -> float:
        """State of charge of the central battery string."""
        return self._charge_j / self._capacity_j

    @property
    def on_battery(self) -> bool:
        """True while the facility runs from stored energy."""
        return self._on_battery

    def efficiency(self) -> float:
        """Wall-to-load efficiency in the current mode."""
        if self._config.eco_mode:
            return self._config.bypass_efficiency
        return self._config.conversion_efficiency ** 2

    def input_power(self, load_w: float) -> float:
        """Utility draw needed to serve ``load_w`` (0 while on battery)."""
        if load_w < 0.0:
            raise ConfigError("load must be non-negative")
        if self._on_battery:
            return 0.0
        return load_w / self.efficiency()

    def conversion_loss(self, load_w: float) -> float:
        """Power dissipated in the double conversion at ``load_w``."""
        if self._on_battery:
            return 0.0
        return self.input_power(load_w) - load_w

    def switch_to_battery(self) -> None:
        """Utility outage: the whole facility moves to stored energy."""
        self._on_battery = True

    def switch_to_line(self) -> None:
        """Utility restored."""
        self._on_battery = False

    def step(self, load_w: float, dt: float) -> float:
        """Advance ``dt`` seconds; returns the load power actually served.

        On battery, service stops once the string is empty — the facility
        blacks out as one unit (the SPOF behaviour).
        """
        if load_w < 0.0 or dt <= 0.0:
            raise ConfigError("load and dt must be non-negative/positive")
        if not self._on_battery:
            return load_w
        needed_j = load_w * dt / self.efficiency()
        if needed_j <= self._charge_j:
            self._charge_j -= needed_j
            return load_w
        served = self._charge_j * self.efficiency() / dt
        self._charge_j = 0.0
        return served

    def grid_step(
        self, load_w: float, dt: float, utility_available: bool
    ) -> float:
        """One step with automatic transfer switching.

        The convenience wrapper for grid-disturbance scenarios: a voltage
        sag (or any utility loss) flips the transfer switch to battery,
        and restoration flips it back — the same semantics a
        :class:`~repro.grid.spec.VoltageSag` window applies to the
        distributed fleet. Returns the load power actually served.
        """
        if utility_available:
            if self._on_battery:
                self.switch_to_line()
        elif not self._on_battery:
            self.switch_to_battery()
        return self.step(load_w, dt)

    def recharge(self, power_w: float, dt: float) -> float:
        """Refill the string from the utility; returns power absorbed."""
        if power_w < 0.0 or dt <= 0.0:
            raise ConfigError("power and dt must be non-negative/positive")
        headroom = self._capacity_j - self._charge_j
        absorbed = min(power_w, headroom / dt)
        self._charge_j = clamp(
            self._charge_j + absorbed * dt, 0.0, self._capacity_j
        )
        return absorbed


def annual_conversion_loss_kwh(
    config: CentralUpsConfig, average_load_w: float
) -> float:
    """Energy wasted per year by the double conversion at a given load.

    The first-order number behind the paper's efficiency motivation: a
    distributed DC-bus backup eliminates this term entirely.
    """
    if average_load_w < 0.0:
        raise ConfigError("load must be non-negative")
    ups = CentralUps(config)
    loss_w = ups.conversion_loss(average_load_w)
    return loss_w * 8760.0 / 1000.0


def distributed_backup_saving_kwh(
    config: CentralUpsConfig, average_load_w: float,
    deb_charge_overhead: float = 0.01,
) -> float:
    """Annual energy saved by replacing the UPS with DEB cabinets.

    DEB units sit on the DC bus and add only a small trickle-charge
    overhead instead of a continuous double conversion.
    """
    if not 0.0 <= deb_charge_overhead < 1.0:
        raise ConfigError("charge overhead must be in [0, 1)")
    ups_loss = annual_conversion_loss_kwh(config, average_load_w)
    deb_loss = average_load_w * deb_charge_overhead * 8760.0 / 1000.0
    return ups_loss - deb_loss
