"""Vectorized breaker-bank thermal integrator.

``stage_protection`` advances one breaker per rack plus the cluster-level
breaker every fine-grained tick — 23 Python-object ``step`` calls per
0.5 s of simulated time in the fig15/fig16 sweeps. The bank kernels here
hold every breaker's rating, heat accumulator and trip latch in flat
arrays and advance the whole bank in one call.

Two implementations share the interface:

* :class:`ScalarBreakerBank` — an adapter over a list of
  :class:`~repro.power.breaker.CircuitBreaker` objects, the oracle.
* :class:`BreakerBankState` — the array kernel. Ratios, heating and the
  exponential cooldown use the same IEEE float64 expressions as the
  scalar breaker (the cooldown's ``exp`` is a single scalar ``math.exp``
  because ``dt``/``tau`` are shared), so heat and trip times agree
  bit-for-bit — enforced by ``tests/test_vectorized_equivalence.py``.
"""

from __future__ import annotations

import math

import numpy as np

from ..config import BreakerConfig
from ..errors import ConfigError, PowerTopologyError
from ..kernels import get_kernels
from .breaker import CircuitBreaker, TripEvent

__all__ = [
    "BreakerBankState",
    "CompiledBreakerBank",
    "ScalarBreakerBank",
    "make_breaker_bank",
]


class ScalarBreakerBank:
    """A bank of scalar :class:`CircuitBreaker` objects — the oracle.

    Args:
        shape: Trip-curve parameters shared by every breaker (each entry
            of ``rated_w`` re-targets a copy via ``with_rating``).
        rated_w: Per-breaker continuous rating in watts.
    """

    #: Protection code branches on this to pick the call paths.
    vectorized = False

    def __init__(self, shape: BreakerConfig, rated_w: np.ndarray) -> None:
        ratings = np.asarray(rated_w, dtype=float)
        if ratings.ndim != 1 or ratings.size == 0:
            raise ConfigError("need a 1-D, non-empty rating vector")
        self._breakers = [
            CircuitBreaker(shape.with_rating(float(r))) for r in ratings
        ]

    @classmethod
    def from_breakers(
        cls, breakers: "list[CircuitBreaker]"
    ) -> "ScalarBreakerBank":
        """Wrap existing breaker objects without copying them.

        The bank *shares* the breaker objects — stepping the bank steps
        the originals. This is how :class:`~repro.power.topology.PowerTree`
        keeps its object tree (the differential oracle) as the single
        source of truth while exposing the bank interface.
        """
        if not breakers:
            raise ConfigError("need at least one breaker")
        bank = cls.__new__(cls)
        bank._breakers = list(breakers)
        return bank

    def __len__(self) -> int:
        return len(self._breakers)

    @property
    def breakers(self) -> "tuple[CircuitBreaker, ...]":
        """The managed breakers, for tests and drill-down."""
        return tuple(self._breakers)

    @property
    def rated_w(self) -> np.ndarray:
        """Per-breaker continuous rating in watts."""
        return np.array([b.rated_w for b in self._breakers])

    @property
    def heat(self) -> np.ndarray:
        """Per-breaker thermal-accumulator level."""
        return np.array([b.heat for b in self._breakers])

    @property
    def tripped(self) -> np.ndarray:
        """Per-breaker open/closed latch."""
        return np.array([b.is_tripped for b in self._breakers])

    @property
    def any_tripped(self) -> bool:
        """True if at least one breaker in the bank is open."""
        return any(b.is_tripped for b in self._breakers)

    def set_ratings(self, rated_w: np.ndarray) -> None:
        """Re-target every breaker (accumulated heat persists)."""
        ratings = np.asarray(rated_w, dtype=float)
        if ratings.shape != (len(self._breakers),):
            raise ConfigError("need one rating per breaker")
        for breaker, rating in zip(self._breakers, ratings):
            breaker.set_rating(float(rating))

    def time_to_trip(self, power_w: np.ndarray) -> np.ndarray:
        """Per-breaker seconds-to-trip under constant ``power_w``."""
        power = np.asarray(power_w, dtype=float)
        if power.shape != (len(self._breakers),):
            raise ConfigError("need one load entry per breaker")
        return np.array(
            [b.time_to_trip(float(p)) for b, p in zip(self._breakers, power)]
        )

    def step(
        self, power_w: np.ndarray, dt: float, time_s: float = 0.0
    ) -> "list[int]":
        """Advance the bank one step; return newly-tripped indices ascending."""
        power = np.asarray(power_w, dtype=float)
        if power.shape != (len(self._breakers),):
            raise ConfigError("need one load entry per breaker")
        newly = []
        for i, breaker in enumerate(self._breakers):
            if breaker.step(float(power[i]), dt, time_s):
                newly.append(i)
        return newly

    def trip_event(self, index: int) -> "TripEvent | None":
        """The trip record of breaker ``index`` (``None`` while closed)."""
        return self._breakers[index].trip_event

    def reset(self, index: int) -> None:
        """Close breaker ``index`` and clear its heat (manual re-arm)."""
        self._breakers[index].reset()

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint."""
        states = [b.ff_state() for b in self._breakers]
        return {
            key: np.array([s[key] for s in states]) for key in states[0]
        }

    def reset_all(self) -> None:
        """Re-arm every breaker in the bank."""
        for breaker in self._breakers:
            breaker.reset()


class BreakerBankState:
    """Array-backed thermal-magnetic breakers — one vector step per tick.

    Args:
        shape: Trip-curve parameters shared by every breaker.
        rated_w: Per-breaker continuous rating in watts.
    """

    vectorized = True

    def __init__(self, shape: BreakerConfig, rated_w: np.ndarray) -> None:
        ratings = np.asarray(rated_w, dtype=float)
        if ratings.ndim != 1 or ratings.size == 0:
            raise ConfigError("need a 1-D, non-empty rating vector")
        if np.any(ratings <= 0.0):
            raise PowerTopologyError("rating must be positive")
        self._shape = shape
        self._rated_w = ratings.copy()
        self._heat = np.zeros(ratings.size)
        self._tripped = np.zeros(ratings.size, dtype=bool)
        self._trip_events: "list[TripEvent | None]" = [None] * ratings.size

    def __len__(self) -> int:
        return self._rated_w.size

    @property
    def config(self) -> BreakerConfig:
        """The shared trip-curve parameters."""
        return self._shape

    @property
    def rated_w(self) -> np.ndarray:
        """Per-breaker continuous rating in watts."""
        return self._rated_w.copy()

    @property
    def heat(self) -> np.ndarray:
        """Per-breaker thermal-accumulator level."""
        return self._heat.copy()

    @property
    def tripped(self) -> np.ndarray:
        """Per-breaker open/closed latch."""
        return self._tripped.copy()

    @property
    def any_tripped(self) -> bool:
        """True if at least one breaker in the bank is open."""
        return bool(np.any(self._tripped))

    def set_ratings(self, rated_w: np.ndarray) -> None:
        """Re-target every breaker (accumulated heat persists)."""
        ratings = np.asarray(rated_w, dtype=float)
        if ratings.shape != self._rated_w.shape:
            raise ConfigError("need one rating per breaker")
        if np.any(ratings <= 0.0):
            raise PowerTopologyError("rating must be positive")
        self._rated_w = ratings.copy()

    def time_to_trip(self, power_w: np.ndarray) -> np.ndarray:
        """Per-breaker seconds-to-trip under constant ``power_w``."""
        power = np.asarray(power_w, dtype=float)
        if power.shape != self._rated_w.shape:
            raise ConfigError("need one load entry per breaker")
        ratio = power / self._rated_w
        remaining = self._shape.trip_energy - self._heat
        with np.errstate(divide="ignore", invalid="ignore"):
            thermal = np.maximum(0.0, remaining / (ratio * ratio - 1.0))
        out = np.where(ratio <= 1.0, math.inf, thermal)
        return np.where(ratio >= self._shape.instant_trip_ratio, 0.0, out)

    def step(
        self, power_w: np.ndarray, dt: float, time_s: float = 0.0
    ) -> "list[int]":
        """Advance the bank one step; return newly-tripped indices ascending.

        Mirrors :meth:`CircuitBreaker.step` breaker for breaker: tripped
        breakers are inert; the magnetic element fires at or above the
        instant ratio; overloaded thermal elements heat by
        ``(ratio² − 1)·dt`` and latch at ``trip_energy``; everything else
        cools exponentially.
        """
        if dt <= 0.0:
            raise PowerTopologyError(f"dt must be positive, got {dt}")
        power = np.asarray(power_w, dtype=float)
        if power.shape != self._rated_w.shape:
            raise ConfigError("need one load entry per breaker")
        if np.any(power < 0.0):
            worst = float(np.min(power))
            raise PowerTopologyError(
                f"power must be non-negative, got {worst}"
            )
        ratio = power / self._rated_w
        if not np.any(ratio > 1.0) and not self._tripped.any():
            # Whole bank cooling (the common benign-tick case):
            # instant_trip_ratio > 1, so nothing heats or latches.
            self._heat *= math.exp(-dt / self._shape.cooldown_tau_s)
            return []
        active = ~self._tripped
        instant = active & (ratio >= self._shape.instant_trip_ratio)
        overloaded = active & ~instant & (ratio > 1.0)
        cooling = active & ~instant & ~overloaded
        self._heat[overloaded] += (
            ratio[overloaded] * ratio[overloaded] - 1.0
        ) * dt
        self._heat[cooling] *= math.exp(-dt / self._shape.cooldown_tau_s)
        thermal = overloaded & (self._heat >= self._shape.trip_energy)
        newly = instant | thermal
        if not np.any(newly):
            return []
        self._tripped |= newly
        indices = [int(i) for i in np.nonzero(newly)[0]]
        for i in indices:
            self._trip_events[i] = TripEvent(
                time_s=time_s,
                power_w=float(power[i]),
                overload_ratio=float(ratio[i]),
                instantaneous=bool(instant[i]),
            )
        return indices

    def trip_event(self, index: int) -> "TripEvent | None":
        """The trip record of breaker ``index`` (``None`` while closed)."""
        return self._trip_events[index]

    def reset(self, index: int) -> None:
        """Close breaker ``index`` and clear its heat (manual re-arm)."""
        self._tripped[index] = False
        self._heat[index] = 0.0
        self._trip_events[index] = None

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint."""
        return {
            "heat": self._heat,
            "tripped": self._tripped,
            "rated_w": self._rated_w,
        }

    def reset_all(self) -> None:
        """Re-arm every breaker in the bank."""
        self._tripped[:] = False
        self._heat[:] = 0.0
        self._trip_events = [None] * len(self)


class CompiledBreakerBank(BreakerBankState):
    """Breaker bank stepping through the compiled kernel tier.

    Input validation (and the error taxonomy) stays in numpy — errors
    are not hot; the thermal integration runs as one compiled call
    mutating the heat/trip arrays in place. Trip *events* are rare, so
    they are reconstructed in Python from the kernel's newly-tripped
    mask with the exact expressions the numpy path records. Falls back
    to the numpy step if the provider vanished (e.g. an unpickled bank
    on a machine without numba or a C compiler).
    """

    def step(
        self, power_w: np.ndarray, dt: float, time_s: float = 0.0
    ) -> "list[int]":
        kernels = get_kernels()
        if kernels is None:
            return super().step(power_w, dt, time_s)
        if dt <= 0.0:
            raise PowerTopologyError(f"dt must be positive, got {dt}")
        power = np.ascontiguousarray(power_w, dtype=float)
        if power.shape != self._rated_w.shape:
            raise ConfigError("need one load entry per breaker")
        if np.any(power < 0.0):
            worst = float(np.min(power))
            raise PowerTopologyError(
                f"power must be non-negative, got {worst}"
            )
        ratio = power / self._rated_w
        if not np.any(ratio > 1.0) and not self._tripped.any():
            # Same whole-bank-cooling shortcut as the numpy step (the
            # common benign-tick case); skips the kernel call and the
            # newly-tripped scratch allocation. Bit-identical: the
            # kernel's cooling branch computes heat[i] * cool too.
            self._heat *= math.exp(-dt / self._shape.cooldown_tau_s)
            return []
        newly = np.zeros(len(self), dtype=np.uint8)
        count = kernels.breaker_step(
            len(self), power, self._rated_w, self._heat,
            self._tripped.view(np.uint8), newly,
            dt, math.exp(-dt / self._shape.cooldown_tau_s),
            self._shape.instant_trip_ratio, self._shape.trip_energy,
        )
        if count == 0:
            return []
        indices = [int(i) for i in np.nonzero(newly)[0]]
        for i in indices:
            ratio = float(power[i] / self._rated_w[i])
            self._trip_events[i] = TripEvent(
                time_s=time_s,
                power_w=float(power[i]),
                overload_ratio=ratio,
                instantaneous=bool(ratio >= self._shape.instant_trip_ratio),
            )
        return indices


def make_breaker_bank(
    backend: str,
    shape: BreakerConfig,
    rated_w: np.ndarray,
    kernels: str = "numpy",
) -> "ScalarBreakerBank | BreakerBankState":
    """Build a breaker bank for a backend (``scalar`` | ``vectorized``).

    ``kernels="compiled"`` upgrades the vectorized bank to the compiled
    thermal step (a no-op for the scalar oracle, which exists to check
    the others).
    """
    if backend == "scalar":
        return ScalarBreakerBank(shape, rated_w)
    if backend == "vectorized":
        if kernels == "compiled" and get_kernels() is not None:
            return CompiledBreakerBank(shape, rated_w)
        return BreakerBankState(shape, rated_w)
    raise ConfigError(f"unknown breaker backend: {backend!r}")
