"""Hierarchical power-distribution tree (paper Fig. 4, generalised).

Builds and validates the cluster's electrical topology: one cluster PDU at
the root, an optional mid tier of row PDUs, and one rack PDU per rack.
Validation encodes the paper's provisioning constraints at every tier:

* Eq. (1) — per-rack utility draw ``p_i - b_i <= lambda_i * P_r`` (the
  battery must cover anything above the soft limit);
* Eq. (2) — ``sum(lambda_i * P_r) <= P_PDU <= n * P_r`` applied per PDU
  *and* cluster-wide (soft limits fit inside every ancestor budget).

The hierarchy is **compiled** once into flat index arrays — rack → PDU
membership, contiguous segment offsets, per-PDU budgets — that the hot
path consumes with array ops instead of walking Python objects:
``np.add.reduceat`` over the PDU-sorted rack order yields every mid-tier
load in one call. Racks are assigned to PDUs contiguously in index order,
so PDU-sorted order *is* natural order and the segment offsets are a plain
cumulative sum.

Breaker indices inside the flattened bank are laid out racks first, then
mid-tier PDUs, then the cluster breaker last — the same layout
``sim/datacenter.py`` uses — and are reported with stable labels: rack
``i`` as ``i``, the cluster breaker as ``-1`` and mid-tier PDU ``j`` as
``-(2 + j)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ClusterConfig
from ..errors import PowerTopologyError
from .breaker_kernels import ScalarBreakerBank, make_breaker_bank
from .pdu import ClusterPDU, RackPDU

#: Breaker label of the cluster (root) breaker in trip reports.
CLUSTER_BREAKER_ID = -1


def pdu_breaker_id(pdu_index: int) -> int:
    """Stable trip label of mid-tier PDU ``pdu_index`` (``-(2 + j)``)."""
    return -(2 + pdu_index)


@dataclass(frozen=True)
class CompiledTopology:
    """Flat-array view of the power hierarchy consumed by the kernels.

    Attributes:
        racks: Number of leaf racks.
        pdus: Number of mid-tier PDUs (1 when the tree is flat).
        rack_to_pdu: Rack → PDU membership, shape ``(racks,)``.
        segment_starts: Start offset of each PDU's contiguous rack block,
            shape ``(pdus,)`` — the ``np.add.reduceat`` index vector.
        pdu_rack_counts: Racks per PDU, shape ``(pdus,)``.
        pdu_budget_w: Per-PDU power budget in watts, shape ``(pdus,)``.
        cluster_budget_w: Root budget ``P_PDU`` in watts.
        pdu_breaker_rated_w: Mid-tier breaker ratings (budget x margin),
            shape ``(pdus,)``. Unused when :attr:`has_pdu_tier` is False.
        has_pdu_tier: True when physical mid-tier breakers exist
            (``pdus > 1``); a flat tree keeps the historical
            racks-plus-cluster bank layout bit-for-bit.
    """

    racks: int
    pdus: int
    rack_to_pdu: np.ndarray
    segment_starts: np.ndarray
    pdu_rack_counts: np.ndarray
    pdu_budget_w: np.ndarray
    cluster_budget_w: float
    pdu_breaker_rated_w: np.ndarray
    has_pdu_tier: bool

    @property
    def n_mid_breakers(self) -> int:
        """Mid-tier breakers in the flattened bank (0 for a flat tree)."""
        return self.pdus if self.has_pdu_tier else 0

    @property
    def n_breakers(self) -> int:
        """Total breakers in the flattened bank (racks + mid + cluster)."""
        return self.racks + self.n_mid_breakers + 1

    def pdu_sums(self, rack_values: np.ndarray) -> np.ndarray:
        """Per-PDU sums of a per-rack vector via one segment reduction."""
        return np.add.reduceat(rack_values, self.segment_starts)

    def breaker_label(self, index: int) -> int:
        """Map a flattened bank index to its stable trip label.

        Rack ``i`` → ``i``; mid-tier PDU ``j`` → ``-(2 + j)``; the cluster
        breaker (always last) → ``-1``.
        """
        if index < self.racks:
            return index
        if index == self.n_breakers - 1:
            return CLUSTER_BREAKER_ID
        return pdu_breaker_id(index - self.racks)

    def rack_slice(self, pdu_index: int) -> slice:
        """The contiguous rack-index block fed by PDU ``pdu_index``."""
        start = int(self.segment_starts[pdu_index])
        return slice(start, start + int(self.pdu_rack_counts[pdu_index]))


def compile_topology(config: ClusterConfig) -> CompiledTopology:
    """Compile a :class:`ClusterConfig` hierarchy into flat index arrays."""
    counts = np.asarray(config.pdu_rack_counts, dtype=np.intp)
    pdus = counts.size
    segment_starts = np.zeros(pdus, dtype=np.intp)
    np.cumsum(counts[:-1], out=segment_starts[1:])
    rack_to_pdu = np.repeat(np.arange(pdus, dtype=np.intp), counts)
    budgets = np.asarray(config.pdu_budgets_w, dtype=float)
    margin = (
        config.topology.pdu_breaker_margin
        if config.topology is not None
        else 1.0
    )
    return CompiledTopology(
        racks=config.racks,
        pdus=pdus,
        rack_to_pdu=rack_to_pdu,
        segment_starts=segment_starts,
        pdu_rack_counts=counts,
        pdu_budget_w=budgets,
        cluster_budget_w=config.pdu_budget_w,
        pdu_breaker_rated_w=budgets * margin,
        has_pdu_tier=pdus > 1,
    )


class PowerTree:
    """The validated power-delivery tree for one cluster.

    Rack breakers are rated at the rack *nameplate* power (the wiring must
    carry a fully loaded rack), while the soft limits start at the
    configured ``lambda_i`` split of each PDU's budget.

    The object tree (:class:`RackPDU` leaves, optional mid-tier
    :class:`ClusterPDU` rows, a root :class:`ClusterPDU`) remains the
    source of truth for validation. Stepping is delegated to a flattened
    breaker bank selected by ``backend``: ``"scalar"`` wraps the *same*
    breaker objects (the differential oracle), ``"vectorized"`` advances
    flat arrays — one kernel call per tick regardless of rack count.

    Args:
        config: The cluster (and optional multi-PDU topology) to build.
        backend: ``"vectorized"`` (default) or ``"scalar"``.
    """

    def __init__(
        self, config: ClusterConfig, backend: str = "vectorized"
    ) -> None:
        self._config = config
        rack = config.rack
        budget_w = config.pdu_budget_w
        if budget_w > config.nameplate_w:
            raise PowerTopologyError(
                "cluster budget exceeds aggregate nameplate power"
            )
        self.topology = compile_topology(config)
        topo = self.topology
        self.cluster_pdu = ClusterPDU(budget_w=budget_w, breaker_shape=rack.breaker)
        margin = (
            config.topology.pdu_breaker_margin
            if config.topology is not None
            else 1.0
        )
        self.row_pdus = (
            [
                ClusterPDU(
                    budget_w=float(topo.pdu_budget_w[j]),
                    breaker_shape=rack.breaker,
                    breaker_margin=margin,
                )
                for j in range(topo.pdus)
            ]
            if topo.has_pdu_tier
            else []
        )
        self.rack_pdus = [
            RackPDU(
                rack_id=i,
                soft_limit_w=min(
                    config.rack_soft_limit_w,
                    float(topo.pdu_budget_w[topo.rack_to_pdu[i]])
                    / int(topo.pdu_rack_counts[topo.rack_to_pdu[i]]),
                ),
                breaker_rating_w=rack.nameplate_w,
                breaker_shape=rack.breaker,
            )
            for i in range(config.racks)
        ]
        self._soft_limits = np.array(
            [pdu.soft_limit_w for pdu in self.rack_pdus]
        )
        self._validate_tier_budgets()
        # One flattened bank steps every breaker: racks, then mid-tier
        # rows, then the cluster breaker last.
        ratings = np.empty(topo.n_breakers)
        ratings[: topo.racks] = rack.nameplate_w
        if topo.has_pdu_tier:
            ratings[topo.racks : -1] = topo.pdu_breaker_rated_w
        ratings[-1] = budget_w
        if backend == "scalar":
            breakers = [pdu.breaker for pdu in self.rack_pdus]
            breakers += [row.breaker for row in self.row_pdus]
            breakers.append(self.cluster_pdu.breaker)
            self._bank = ScalarBreakerBank.from_breakers(breakers)
        else:
            self._bank = make_breaker_bank(backend, rack.breaker, ratings)
        self._loads_buf = np.empty(topo.n_breakers)

    @property
    def config(self) -> ClusterConfig:
        """The cluster configuration this tree was built from."""
        return self._config

    @property
    def racks(self) -> int:
        """Number of racks in the tree."""
        return len(self.rack_pdus)

    @property
    def pdus(self) -> int:
        """Number of mid-tier PDUs (1 when the tree is flat)."""
        return self.topology.pdus

    @property
    def backend(self) -> str:
        """Which stepping kernel this tree uses."""
        return "vectorized" if self._bank.vectorized else "scalar"

    def soft_limits(self) -> np.ndarray:
        """Per-rack soft limits ``lambda_i * P_r`` as an array (watts).

        The array is cached and invalidated by :meth:`set_soft_limits` /
        :meth:`set_soft_limit`; treat it as read-only.
        """
        return self._soft_limits

    def pdu_soft_limit_sums(self) -> np.ndarray:
        """Per-PDU sum of assigned rack soft limits (watts)."""
        return self.topology.pdu_sums(self._soft_limits)

    def _validate_tier_budgets(self) -> None:
        """Enforce Eq. (2) per mid-tier PDU and cluster-wide."""
        if self.topology.has_pdu_tier:
            sums = self.topology.pdu_sums(self._soft_limits)
            over = np.nonzero(
                sums > self.topology.pdu_budget_w * (1.0 + 1e-9)
            )[0]
            if over.size:
                j = int(over[0])
                raise PowerTopologyError(
                    f"PDU {j}: rack soft limits sum to {sums[j]:.0f} W, "
                    f"above its budget {self.topology.pdu_budget_w[j]:.0f} W "
                    "(Eq. 2 violated at the PDU tier)"
                )
        self.cluster_pdu.validate_soft_limits(self.rack_pdus)

    def set_soft_limits(self, limits_w: "list[float] | np.ndarray") -> None:
        """Reassign all outlet budgets at once, re-checking Eq. (2)."""
        if len(limits_w) != self.racks:
            raise PowerTopologyError("need one soft limit per rack")
        limits = np.asarray(limits_w, dtype=float)
        total = float(np.sum(limits))
        if total > self.cluster_pdu.budget_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                f"new soft limits sum to {total:.0f} W, above cluster budget "
                f"{self.cluster_pdu.budget_w:.0f} W"
            )
        if self.topology.has_pdu_tier:
            sums = self.topology.pdu_sums(limits)
            over = np.nonzero(
                sums > self.topology.pdu_budget_w * (1.0 + 1e-9)
            )[0]
            if over.size:
                j = int(over[0])
                raise PowerTopologyError(
                    f"PDU {j}: new soft limits sum to {sums[j]:.0f} W, "
                    f"above its budget {self.topology.pdu_budget_w[j]:.0f} W"
                )
        for pdu, limit in zip(self.rack_pdus, limits):
            pdu.set_soft_limit(float(limit))
        self._soft_limits = np.array(
            [pdu.soft_limit_w for pdu in self.rack_pdus]
        )

    def set_soft_limit(self, rack_id: int, soft_limit_w: float) -> None:
        """Adjust one outlet budget, re-checking the affected tiers."""
        if not 0 <= rack_id < self.racks:
            raise PowerTopologyError(f"no such rack: {rack_id}")
        candidate = self._soft_limits.copy()
        candidate[rack_id] = float(soft_limit_w)
        total = float(np.sum(candidate))
        if total > self.cluster_pdu.budget_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                f"rack {rack_id}: raising its soft limit to "
                f"{soft_limit_w:.0f} W pushes the total to {total:.0f} W, "
                f"above cluster budget {self.cluster_pdu.budget_w:.0f} W"
            )
        if self.topology.has_pdu_tier:
            j = int(self.topology.rack_to_pdu[rack_id])
            block = candidate[self.topology.rack_slice(j)]
            if float(np.sum(block)) > float(
                self.topology.pdu_budget_w[j]
            ) * (1.0 + 1e-9):
                raise PowerTopologyError(
                    f"rack {rack_id}: new soft limit oversubscribes PDU {j} "
                    f"budget {self.topology.pdu_budget_w[j]:.0f} W"
                )
        self.rack_pdus[rack_id].set_soft_limit(float(soft_limit_w))
        self._soft_limits = candidate

    def check_dispatch(
        self,
        rack_power_w: "list[float] | np.ndarray",
        battery_power_w: "list[float] | np.ndarray",
    ) -> None:
        """Validate a power dispatch against paper Eq. (1).

        Args:
            rack_power_w: Per-rack total demand ``p_i``.
            battery_power_w: Per-rack battery contribution ``b_i``.

        Raises:
            PowerTopologyError: if any rack's utility draw exceeds its soft
                limit by more than numerical tolerance. The message names
                the *worst* offender (largest excess) and the total number
                of violating racks.
        """
        demand = np.asarray(rack_power_w, dtype=float)
        battery = np.asarray(battery_power_w, dtype=float)
        if demand.shape != (self.racks,) or battery.shape != (self.racks,):
            raise PowerTopologyError("need one power entry per rack")
        utility = demand - battery
        limits = self.soft_limits()
        excess = utility - limits
        violated = np.nonzero(excess > 1e-6)[0]
        if violated.size:
            worst = int(violated[np.argmax(excess[violated])])
            raise PowerTopologyError(
                f"rack {worst}: utility draw {utility[worst]:.0f} W exceeds "
                f"soft limit {limits[worst]:.0f} W by {excess[worst]:.0f} W "
                f"(Eq. 1 violated by {violated.size} of {self.racks} racks)"
            )

    def step(
        self,
        utility_power_w: "list[float] | np.ndarray",
        dt: float,
        time_s: float = 0.0,
    ) -> "list[int]":
        """Advance every breaker one step via the flattened bank.

        Args:
            utility_power_w: Per-rack power drawn *from the utility path*
                (demand minus local battery/supercap contribution) — this
                is the current the breakers actually see. Mid-tier and
                cluster loads are derived by segment reduction.

        Returns:
            Labels of breakers that tripped during this step: rack ids for
            rack breakers, ``-(2 + j)`` for mid-tier PDU ``j``, ``-1`` for
            the cluster breaker.
        """
        utility = np.asarray(utility_power_w, dtype=float)
        topo = self.topology
        loads = self._loads_buf
        loads[: topo.racks] = utility
        if topo.has_pdu_tier:
            loads[topo.racks : -1] = topo.pdu_sums(utility)
        loads[-1] = float(np.sum(utility))
        newly = self._bank.step(loads, dt, time_s)
        return [topo.breaker_label(i) for i in newly]

    def tripped_racks(self) -> np.ndarray:
        """Rack ids whose breaker is currently open (no list allocation)."""
        return np.nonzero(self._bank.tripped[: self.racks])[0]

    def tripped_pdus(self) -> np.ndarray:
        """Mid-tier PDU indices whose breaker is currently open."""
        topo = self.topology
        if not topo.has_pdu_tier:
            return np.empty(0, dtype=np.intp)
        return np.nonzero(self._bank.tripped[topo.racks : -1])[0]

    @property
    def any_tripped(self) -> bool:
        """True if any breaker in the tree is open."""
        return self._bank.any_tripped

    def reset(self) -> None:
        """Re-arm every breaker in the tree."""
        self._bank.reset_all()
