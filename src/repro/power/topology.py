"""Two-stage power-distribution tree (paper Fig. 4).

Builds and validates the cluster's electrical topology: one cluster PDU at
the root, one rack PDU per rack, each rack PDU protecting ``servers`` of
nameplate power ``P_peak``. Validation encodes the paper's provisioning
constraints:

* Eq. (1) — per-rack utility draw ``p_i - b_i <= lambda_i * P_r`` (the
  battery must cover anything above the soft limit);
* Eq. (2) — ``sum(lambda_i * P_r) <= P_PDU <= n * P_r`` (soft limits fit in
  the cluster budget; the cluster is genuinely oversubscribed).
"""

from __future__ import annotations

import numpy as np

from ..config import ClusterConfig
from ..errors import PowerTopologyError
from .pdu import ClusterPDU, RackPDU


class PowerTree:
    """The validated power-delivery tree for one cluster.

    Rack breakers are rated at the rack *nameplate* power (the wiring must
    carry a fully loaded rack), while the soft limits start at the
    configured ``lambda_i`` split of the cluster budget.
    """

    def __init__(self, config: ClusterConfig) -> None:
        self._config = config
        rack = config.rack
        budget_w = config.pdu_budget_w
        if budget_w > config.nameplate_w:
            raise PowerTopologyError(
                "cluster budget exceeds aggregate nameplate power"
            )
        self.cluster_pdu = ClusterPDU(budget_w=budget_w, breaker_shape=rack.breaker)
        soft_limit = min(config.rack_soft_limit_w, budget_w / config.racks)
        self.rack_pdus = [
            RackPDU(
                rack_id=i,
                soft_limit_w=soft_limit,
                breaker_rating_w=rack.nameplate_w,
                breaker_shape=rack.breaker,
            )
            for i in range(config.racks)
        ]
        self.cluster_pdu.validate_soft_limits(self.rack_pdus)

    @property
    def config(self) -> ClusterConfig:
        """The cluster configuration this tree was built from."""
        return self._config

    @property
    def racks(self) -> int:
        """Number of racks in the tree."""
        return len(self.rack_pdus)

    def soft_limits(self) -> np.ndarray:
        """Per-rack soft limits ``lambda_i * P_r`` as an array (watts)."""
        return np.array([pdu.soft_limit_w for pdu in self.rack_pdus])

    def set_soft_limits(self, limits_w: "list[float] | np.ndarray") -> None:
        """Reassign all outlet budgets at once, re-checking Eq. (2)."""
        if len(limits_w) != self.racks:
            raise PowerTopologyError("need one soft limit per rack")
        total = float(np.sum(np.asarray(limits_w, dtype=float)))
        if total > self.cluster_pdu.budget_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                f"new soft limits sum to {total:.0f} W, above cluster budget "
                f"{self.cluster_pdu.budget_w:.0f} W"
            )
        for pdu, limit in zip(self.rack_pdus, limits_w):
            pdu.set_soft_limit(float(limit))

    def check_dispatch(
        self,
        rack_power_w: "list[float] | np.ndarray",
        battery_power_w: "list[float] | np.ndarray",
    ) -> None:
        """Validate a power dispatch against paper Eq. (1).

        Args:
            rack_power_w: Per-rack total demand ``p_i``.
            battery_power_w: Per-rack battery contribution ``b_i``.

        Raises:
            PowerTopologyError: if any rack's utility draw exceeds its soft
                limit by more than numerical tolerance.
        """
        demand = np.asarray(rack_power_w, dtype=float)
        battery = np.asarray(battery_power_w, dtype=float)
        if demand.shape != (self.racks,) or battery.shape != (self.racks,):
            raise PowerTopologyError("need one power entry per rack")
        utility = demand - battery
        limits = self.soft_limits()
        violated = np.nonzero(utility > limits + 1e-6)[0]
        if violated.size:
            worst = int(violated[0])
            raise PowerTopologyError(
                f"rack {worst}: utility draw {utility[worst]:.0f} W exceeds "
                f"soft limit {limits[worst]:.0f} W (Eq. 1 violated)"
            )

    def step(
        self,
        utility_power_w: "list[float] | np.ndarray",
        dt: float,
        time_s: float = 0.0,
    ) -> "list[int]":
        """Advance every breaker one step.

        Args:
            utility_power_w: Per-rack power drawn *from the utility path*
                (demand minus local battery/supercap contribution) — this
                is the current the breakers actually see.

        Returns:
            Rack ids whose breaker tripped during this step; the cluster
            breaker is reported as rack id ``-1``.
        """
        utility = np.asarray(utility_power_w, dtype=float)
        tripped: list[int] = []
        for pdu, power in zip(self.rack_pdus, utility):
            if pdu.step(float(power), dt, time_s):
                tripped.append(pdu.rack_id)
        if self.cluster_pdu.step(float(np.sum(utility)), dt, time_s):
            tripped.append(-1)
        return tripped

    def tripped_racks(self) -> "list[int]":
        """Rack ids whose breaker is currently open."""
        return [pdu.rack_id for pdu in self.rack_pdus if pdu.is_tripped]

    @property
    def any_tripped(self) -> bool:
        """True if any rack or the cluster breaker is open."""
        return self.cluster_pdu.is_tripped or bool(self.tripped_racks())

    def reset(self) -> None:
        """Re-arm every breaker in the tree."""
        self.cluster_pdu.reset()
        for pdu in self.rack_pdus:
            pdu.reset()
