"""Software power-capping controller.

The paper's PSPC baseline combines peak shaving with DVFS capping: when a
rack is over budget and its battery cannot cover the excess, processor
frequency is reduced by 20 %. Two properties matter for the threat model:

* **Actuation latency.** "It often takes 100 ms - 300 ms to reduce the
  power demand, which is not fast enough to correctly shave the peak"
  (§4.2) — so a sub-second hidden spike is over before the cap lands.
* **Hold time.** Capping loops are deliberately sluggish to avoid
  oscillation; once engaged a cap stays on for a while, which is the
  throughput cost the attacker's visible peaks extract from PSPC.
"""

from __future__ import annotations

from ..config import CappingConfig
from ..errors import SimulationError


class CapController:
    """Per-rack DVFS-capping state machine with actuation latency.

    States: idle -> pending (cap requested, latency running) -> active
    (power reduced, hold timer running) -> idle. Re-triggering while active
    restarts the hold timer.
    """

    def __init__(self, config: CappingConfig) -> None:
        self._config = config
        self._pending_s: float | None = None
        self._hold_remaining_s = 0.0
        self._engaged_count = 0
        self._active_time_s = 0.0

    @property
    def config(self) -> CappingConfig:
        """The capping parameters."""
        return self._config

    @property
    def is_active(self) -> bool:
        """True while the DVFS cap is actually reducing power."""
        return self._hold_remaining_s > 0.0

    @property
    def is_pending(self) -> bool:
        """True while a cap has been requested but latency has not elapsed."""
        return self._pending_s is not None

    @property
    def engaged_count(self) -> int:
        """Number of times the cap transitioned pending -> active."""
        return self._engaged_count

    @property
    def active_time_s(self) -> float:
        """Total time spent with the cap active (throughput-loss exposure)."""
        return self._active_time_s

    def step(self, over_budget: bool, dt: float) -> bool:
        """Advance the controller by ``dt``.

        Args:
            over_budget: Whether the monitoring loop currently sees this
                rack above its enforceable budget.

        Returns:
            True if the cap is active for (the bulk of) this step.
        """
        if dt <= 0.0:
            raise SimulationError(f"dt must be positive, got {dt}")
        if self.is_active:
            if over_budget:
                # Re-trigger: sustained overload keeps the cap engaged.
                self._hold_remaining_s = self._config.hold_time_s
            self._hold_remaining_s = max(0.0, self._hold_remaining_s - dt)
            self._active_time_s += dt
            return True
        if self._pending_s is not None:
            self._pending_s += dt
            if self._pending_s >= self._config.latency_s:
                self._pending_s = None
                self._hold_remaining_s = self._config.hold_time_s
                self._engaged_count += 1
                self._active_time_s += dt
                return True
            return False
        if over_budget:
            if self._config.latency_s <= dt:
                # Latency shorter than the step: engage within this step.
                self._pending_s = None
                self._hold_remaining_s = self._config.hold_time_s
                self._engaged_count += 1
                self._active_time_s += dt
                return True
            # The triggering step itself counts toward the latency.
            self._pending_s = dt
        return False

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint.

        All fields are durations/counters (no absolute times), so they
        compare across time windows directly. ``active_time_s`` grows on
        every capped step, which automatically refuses fast-forward while
        a cap is engaged.
        """
        return {
            "pending_s": self._pending_s,
            "hold_remaining_s": self._hold_remaining_s,
            "engaged_count": self._engaged_count,
            "active_time_s": self._active_time_s,
        }

    def reset(self) -> None:
        """Return to idle (counters persist)."""
        self._pending_s = None
        self._hold_remaining_s = 0.0
