"""Server power-supply-unit efficiency model.

The paper's background section (§2.1) motivates distributed DC energy
backup with conversion losses: a double-conversion UPS wastes power twice,
while a server PSU has a load-dependent efficiency curve. We model the
standard 80-PLUS-style curve — poor at light load, peaking near half load —
with a three-point piecewise-linear fit. The efficiency substrate lets the
cost/efficiency experiments quantify the DEB advantage the paper cites
(Microsoft's 15 % PUE improvement, Hitachi's 8 %).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import clamp


class PSUEfficiencyCurve:
    """Piecewise-linear PSU efficiency over load fraction.

    Args:
        points: ``(load_fraction, efficiency)`` pairs, strictly increasing
            in load fraction, spanning at least (0, ...) to (1, ...). The
            default approximates an 80-PLUS Gold supply.
    """

    DEFAULT_POINTS = ((0.0, 0.70), (0.2, 0.87), (0.5, 0.92), (1.0, 0.89))

    def __init__(
        self, points: tuple[tuple[float, float], ...] = DEFAULT_POINTS
    ) -> None:
        if len(points) < 2:
            raise ConfigError("efficiency curve needs at least two points")
        loads = [p[0] for p in points]
        if loads != sorted(set(loads)):
            raise ConfigError("curve load fractions must be strictly increasing")
        if loads[0] != 0.0 or loads[-1] != 1.0:
            raise ConfigError("curve must span load fractions 0.0 .. 1.0")
        for _, eff in points:
            if not 0.0 < eff <= 1.0:
                raise ConfigError(f"efficiency {eff} outside (0, 1]")
        self._points = points

    def efficiency(self, load_fraction: float) -> float:
        """Interpolated efficiency at ``load_fraction`` (clamped to [0, 1])."""
        x = clamp(load_fraction, 0.0, 1.0)
        pts = self._points
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            if x <= x1:
                if x1 == x0:
                    return y1
                t = (x - x0) / (x1 - x0)
                return y0 + t * (y1 - y0)
        return pts[-1][1]


class ServerPSU:
    """A rated PSU converting wall (AC) power to board (DC) power.

    Args:
        rated_w: Output (DC) power rating in watts.
        curve: Efficiency curve over output load fraction.
        conversion_stages: Number of conversion stages between source and
            load. A conventional double-conversion UPS path has 2; a DEB
            DC-bus path has 1 — this is the efficiency edge of distributed
            backup the paper's background quantifies.
    """

    def __init__(
        self,
        rated_w: float,
        curve: PSUEfficiencyCurve | None = None,
        conversion_stages: int = 1,
    ) -> None:
        if rated_w <= 0.0:
            raise ConfigError("PSU rating must be positive")
        if conversion_stages < 1:
            raise ConfigError("need at least one conversion stage")
        self._rated_w = rated_w
        self._curve = curve or PSUEfficiencyCurve()
        self._stages = conversion_stages

    @property
    def rated_w(self) -> float:
        """Output power rating in watts."""
        return self._rated_w

    def wall_power(self, dc_power_w: float) -> float:
        """AC input power needed to deliver ``dc_power_w`` at the board.

        Loads beyond the rating are passed through at worst-case (full-load)
        efficiency rather than clipped: during a power attack the PSU *does*
        momentarily over-deliver, and the wall draw is what trips breakers.
        """
        if dc_power_w <= 0.0:
            return 0.0
        load_fraction = dc_power_w / self._rated_w
        eff = self._curve.efficiency(load_fraction) ** self._stages
        return dc_power_w / eff

    def conversion_loss(self, dc_power_w: float) -> float:
        """Power dissipated in conversion when delivering ``dc_power_w``."""
        return self.wall_power(dc_power_w) - max(dc_power_w, 0.0)
