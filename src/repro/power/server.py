"""Server power model and DVFS capping semantics.

The paper's evaluation assumes HP ProLiant DL585 G5 servers whose power is
characterised by two published SPECpower numbers: 299 W active-idle and
521 W at peak. Between those points, power scales linearly with CPU
utilisation — the standard warehouse-scale approximation (Fan et al.,
ISCA'07, the paper's ref. [12]).

DVFS capping (the PSPC baseline) lowers processor frequency by 20 %, which
removes a matching fraction of the *dynamic* power range and costs a
matching fraction of throughput while engaged.
"""

from __future__ import annotations

import numpy as np

from ..config import ServerConfig
from ..errors import ConfigError
from ..units import clamp


class ServerPowerModel:
    """Maps CPU utilisation to electrical power for one server model.

    All methods accept scalars or numpy arrays of utilisations and are
    vectorised, because the cluster model evaluates hundreds of servers per
    simulation step.
    """

    def __init__(self, config: ServerConfig) -> None:
        self._config = config

    @property
    def config(self) -> ServerConfig:
        """The server's power parameters."""
        return self._config

    @property
    def idle_w(self) -> float:
        """Active-idle power in watts."""
        return self._config.idle_w

    @property
    def peak_w(self) -> float:
        """Full-utilisation power in watts."""
        return self._config.peak_w

    def power(self, utilisation: "float | np.ndarray") -> "float | np.ndarray":
        """Electrical power at the given CPU utilisation in ``[0, 1]``."""
        u = np.clip(utilisation, 0.0, 1.0)
        result = self._config.idle_w + u * self._config.dynamic_range_w
        if np.isscalar(utilisation):
            return float(result)
        return result

    def capped_power(
        self, utilisation: "float | np.ndarray"
    ) -> "float | np.ndarray":
        """Power with the DVFS cap engaged.

        The cap removes ``dvfs_power_reduction`` of the dynamic range: a
        fully loaded capped server draws
        ``idle + (1 - reduction) * dynamic_range``.
        """
        u = np.clip(utilisation, 0.0, 1.0)
        scale = 1.0 - self._config.dvfs_power_reduction
        result = self._config.idle_w + u * scale * self._config.dynamic_range_w
        if np.isscalar(utilisation):
            return float(result)
        return result

    def utilisation_for_power(self, power_w: float) -> float:
        """Invert the linear model: utilisation that draws ``power_w``.

        Clamped to ``[0, 1]``; powers below idle map to 0 and above peak
        to 1.
        """
        u = (power_w - self._config.idle_w) / self._config.dynamic_range_w
        return clamp(u, 0.0, 1.0)

    def throughput(
        self, utilisation: "float | np.ndarray", capped: "bool | np.ndarray" = False
    ) -> "float | np.ndarray":
        """Work delivered per unit time, in utilisation units.

        An uncapped server delivers its utilisation; a capped server loses
        ``dvfs_throughput_penalty`` of it. This is the quantity summed into
        the paper's Fig. 16 "performance" metric.
        """
        u = np.clip(utilisation, 0.0, 1.0)
        penalty = np.where(capped, 1.0 - self._config.dvfs_throughput_penalty, 1.0)
        result = u * penalty
        if np.isscalar(utilisation) and np.isscalar(capped):
            return float(result)
        return result


def validate_budget(config: ServerConfig, budget_w: float) -> None:
    """Check that a per-server power budget is satisfiable at all.

    Raises:
        ConfigError: if the budget is below the capped idle power — no
            management scheme could honour it.
    """
    if budget_w < config.idle_w:
        raise ConfigError(
            f"per-server budget {budget_w:.0f} W is below idle power "
            f"{config.idle_w:.0f} W"
        )
