"""Coarse-grained power metering (paper §3.2, Table I).

Most data centers estimate power by reading energy counters at a fixed
interval — "they normally monitor the total energy consumption at
coarse-grained intervals (e.g., 10 minutes) to estimate the average power
demand". Anything narrower than the interval is invisible: a 1-second spike
folded into a 10-minute average moves the reading by parts per thousand.

:class:`PowerMeter` integrates instantaneous power into interval averages.
The anomaly logic that decides whether an interval looks suspicious lives
in :mod:`repro.core.detection`; this module is purely the sensor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MeterConfig
from ..errors import SimulationError


@dataclass(frozen=True)
class MeterSample:
    """One completed metering interval.

    Attributes:
        start_s: Interval start time.
        end_s: Interval end time.
        average_w: Energy over the interval divided by its length.
        peak_w: Largest instantaneous reading folded into the interval —
            available only to *fine-grained* meters; utilisation-based
            monitoring cannot see it, and detection logic must not use it
            unless it models such a meter.
    """

    start_s: float
    end_s: float
    average_w: float
    peak_w: float


class PowerMeter:
    """Integrating meter emitting one :class:`MeterSample` per interval.

    Feed it instantaneous power with :meth:`step`; it returns the samples
    completed during that step (zero or more — a long simulation step can
    span several metering intervals, in which case the power is attributed
    pro-rata).
    """

    def __init__(self, config: MeterConfig, start_time_s: float = 0.0) -> None:
        self._config = config
        self._interval = config.interval_s
        self._window_start = start_time_s
        self._now = start_time_s
        self._energy_j = 0.0
        self._peak_w = 0.0

    @property
    def config(self) -> MeterConfig:
        """The metering parameters."""
        return self._config

    @property
    def interval_s(self) -> float:
        """The sampling interval in seconds."""
        return self._interval

    @property
    def now_s(self) -> float:
        """Current meter time."""
        return self._now

    def step(self, power_w: float, dt: float) -> "list[MeterSample]":
        """Integrate ``power_w`` held for ``dt`` seconds.

        A zero-length step is a no-op (no energy, no time — schedulers
        legitimately emit them at segment boundaries); a negative step
        would rewind the meter and is rejected.

        Returns:
            Samples for every metering interval completed by this step.

        Raises:
            SimulationError: on negative ``dt`` or negative power.
        """
        if dt < 0.0:
            raise SimulationError(f"dt must be non-negative, got {dt}")
        if dt == 0.0:
            return []
        if power_w < 0.0:
            raise SimulationError(f"power must be non-negative, got {power_w}")
        samples: list[MeterSample] = []
        remaining = dt
        while remaining > 0.0:
            window_end = self._window_start + self._interval
            slice_dt = min(remaining, window_end - self._now)
            self._energy_j += power_w * slice_dt
            self._peak_w = max(self._peak_w, power_w)
            self._now += slice_dt
            remaining -= slice_dt
            if self._now >= window_end - 1e-12:
                samples.append(
                    MeterSample(
                        start_s=self._window_start,
                        end_s=window_end,
                        average_w=self._energy_j / self._interval,
                        peak_w=self._peak_w,
                    )
                )
                self._window_start = window_end
                self._now = window_end
                self._energy_j = 0.0
                self._peak_w = 0.0
        return samples

    def flush(self) -> "MeterSample | None":
        """Close the current partial interval, if any power was integrated.

        The average is still computed over the *full* interval length,
        matching how energy-counter-based estimation under-reads a partial
        window.
        """
        if self._now <= self._window_start:
            return None
        sample = MeterSample(
            start_s=self._window_start,
            end_s=self._now,
            average_w=self._energy_j / self._interval,
            peak_w=self._peak_w,
        )
        self._window_start = self._now
        self._energy_j = 0.0
        self._peak_w = 0.0
        return sample
