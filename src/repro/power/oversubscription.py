"""Power-oversubscription planning (paper §2.2).

Data centers deliberately provision the power infrastructure below the
aggregate nameplate demand — the capacity is too expensive ($10-25/W) to
size for a peak that almost never happens. This module provides the
planning maths around the paper's Eqs. (1) and (2): splitting the cluster
budget into per-rack soft limits, computing the battery power a demand
vector requires, and quantifying the capacity (and cost) the
oversubscription avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PowerTopologyError


@dataclass(frozen=True)
class OversubscriptionPlan:
    """A validated budget split for one cluster.

    Attributes:
        pdu_budget_w: Cluster budget ``P_PDU``.
        rack_nameplate_w: Per-rack peak power ``P_r``.
        soft_limits_w: Per-rack limits ``lambda_i * P_r``; their sum must
            not exceed ``pdu_budget_w`` (Eq. 2).
    """

    pdu_budget_w: float
    rack_nameplate_w: float
    soft_limits_w: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.pdu_budget_w <= 0.0:
            raise PowerTopologyError("PDU budget must be positive")
        if self.rack_nameplate_w <= 0.0:
            raise PowerTopologyError("rack nameplate must be positive")
        if not self.soft_limits_w:
            raise PowerTopologyError("need at least one rack")
        if any(limit <= 0.0 for limit in self.soft_limits_w):
            raise PowerTopologyError("soft limits must be positive")
        if any(
            limit > self.rack_nameplate_w * (1.0 + 1e-9)
            for limit in self.soft_limits_w
        ):
            raise PowerTopologyError("a soft limit exceeds the rack nameplate")
        total = sum(self.soft_limits_w)
        if total > self.pdu_budget_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                f"soft limits sum to {total:.0f} W > budget "
                f"{self.pdu_budget_w:.0f} W (Eq. 2)"
            )
        n = len(self.soft_limits_w)
        if self.pdu_budget_w > n * self.rack_nameplate_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                "budget exceeds total nameplate — not an oversubscribed design"
            )

    @property
    def racks(self) -> int:
        """Number of racks in the plan."""
        return len(self.soft_limits_w)

    @property
    def oversubscription_ratio(self) -> float:
        """``n * P_r / P_PDU`` — how far nameplate exceeds the budget."""
        return self.racks * self.rack_nameplate_w / self.pdu_budget_w

    def lambdas(self) -> np.ndarray:
        """The scaling factors ``lambda_i`` of paper Fig. 4."""
        return np.asarray(self.soft_limits_w) / self.rack_nameplate_w

    def required_battery_power(
        self, rack_demand_w: "list[float] | np.ndarray"
    ) -> np.ndarray:
        """Per-rack battery power ``b_i`` needed to satisfy Eq. (1).

        ``b_i >= p_i - lambda_i * P_r``, clipped at zero: racks within
        budget need no battery support.
        """
        demand = np.asarray(rack_demand_w, dtype=float)
        if demand.shape != (self.racks,):
            raise PowerTopologyError("need one demand entry per rack")
        return np.maximum(0.0, demand - np.asarray(self.soft_limits_w))

    def is_feasible(
        self,
        rack_demand_w: "list[float] | np.ndarray",
        battery_power_w: "list[float] | np.ndarray",
    ) -> bool:
        """True if the dispatch satisfies Eq. (1) on every rack."""
        demand = np.asarray(rack_demand_w, dtype=float)
        battery = np.asarray(battery_power_w, dtype=float)
        return bool(
            np.all(demand - battery <= np.asarray(self.soft_limits_w) + 1e-6)
        )


def even_split(pdu_budget_w: float, rack_nameplate_w: float, racks: int
               ) -> OversubscriptionPlan:
    """Split the budget evenly: ``lambda_i = P_PDU / (n * P_r)`` for all i."""
    if racks <= 0:
        raise PowerTopologyError("need at least one rack")
    limit = min(pdu_budget_w / racks, rack_nameplate_w)
    return OversubscriptionPlan(
        pdu_budget_w=pdu_budget_w,
        rack_nameplate_w=rack_nameplate_w,
        soft_limits_w=tuple([limit] * racks),
    )


def demand_proportional_split(
    pdu_budget_w: float,
    rack_nameplate_w: float,
    rack_demand_w: "list[float] | np.ndarray",
    floor_w: float = 0.0,
) -> OversubscriptionPlan:
    """Split the budget proportionally to observed rack demand.

    This is the "workload-driven" allocation the paper says conventional
    iPDU management performs — and criticises, because it ignores battery
    pressure. We implement it as the baseline against vDEB's SOC-aware
    allocation.

    Args:
        pdu_budget_w: Cluster budget to distribute.
        rack_nameplate_w: Per-rack cap on any single soft limit.
        rack_demand_w: Recent per-rack power demand driving the split.
        floor_w: Minimum soft limit per rack (keeps an idle rack alive).

    Returns:
        A validated plan. Demand above the budget is scaled down uniformly;
        headroom is distributed proportionally as well.
    """
    demand = np.asarray(rack_demand_w, dtype=float)
    if demand.ndim != 1 or demand.size == 0:
        raise PowerTopologyError("demand must be a non-empty 1-D vector")
    if np.any(demand < 0.0):
        raise PowerTopologyError("demand must be non-negative")
    n = demand.size
    if floor_w * n > pdu_budget_w:
        raise PowerTopologyError("floors alone exceed the budget")
    distributable = pdu_budget_w - floor_w * n
    total_demand = float(np.sum(demand))
    if total_demand <= 0.0:
        shares = np.full(n, distributable / n)
    else:
        shares = demand / total_demand * distributable
    limits = np.minimum(floor_w + shares, rack_nameplate_w)
    return OversubscriptionPlan(
        pdu_budget_w=pdu_budget_w,
        rack_nameplate_w=rack_nameplate_w,
        soft_limits_w=tuple(float(x) for x in limits),
    )


def capacity_saving_w(plan: OversubscriptionPlan) -> float:
    """Provisioned capacity avoided relative to a non-oversubscribed build."""
    return plan.racks * plan.rack_nameplate_w - plan.pdu_budget_w


def capacity_saving_dollars(
    plan: OversubscriptionPlan, dollars_per_watt: float = 15.0
) -> float:
    """Capital saving of the oversubscription at ``dollars_per_watt``.

    The default sits mid-range of the paper's quoted $10-25/W build cost.
    """
    if dollars_per_watt <= 0.0:
        raise PowerTopologyError("cost per watt must be positive")
    return capacity_saving_w(plan) * dollars_per_watt
