"""Inverse-time circuit-breaker model.

"Tripping a circuit breaker is not an instantaneous event since most PDU
can tolerate certain degrees of brief current overloads. However, once the
overload exceeds certain threshold, it requires very short time (several
seconds) to trip a circuit breaker." (paper §3.1, citing Meisner & Wenisch)

We reproduce that with the standard thermal-magnetic abstraction:

* **Thermal element.** While overloaded, an accumulator integrates
  ``(P / P_rated)^2 - 1`` (Joule heating above the sustainable level). The
  breaker trips when the accumulator exceeds ``trip_energy``; a constant
  overload ratio ``r`` therefore trips after ``trip_energy / (r^2 - 1)``
  seconds — the classic inverse-time curve. Below the rating the
  accumulator cools exponentially.
* **Magnetic element.** Overloads at or above ``instant_trip_ratio`` trip
  within one simulation step regardless of accumulated heat.

A tripped breaker stays open until explicitly :meth:`reset` — power is lost
downstream, which is the paper's definition of a successful attack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import BreakerConfig
from ..errors import PowerTopologyError


@dataclass(frozen=True)
class TripEvent:
    """Record of a breaker trip.

    Attributes:
        time_s: Simulation time of the trip.
        power_w: Load power at the moment of the trip.
        overload_ratio: ``power / rated`` at the trip.
        instantaneous: True if the magnetic element fired (extreme
            overload), False for an inverse-time thermal trip.
    """

    time_s: float
    power_w: float
    overload_ratio: float
    instantaneous: bool


class CircuitBreaker:
    """A thermal-magnetic breaker protecting one power-delivery edge."""

    def __init__(self, config: BreakerConfig) -> None:
        self._config = config
        self._heat = 0.0
        self._tripped = False
        self._trip_event: TripEvent | None = None

    @property
    def config(self) -> BreakerConfig:
        """The trip-curve parameters."""
        return self._config

    @property
    def rated_w(self) -> float:
        """Continuous power rating in watts."""
        return self._config.rated_w

    @property
    def is_tripped(self) -> bool:
        """True once the breaker has opened (until :meth:`reset`)."""
        return self._tripped

    @property
    def heat(self) -> float:
        """Current thermal-accumulator level (trip at ``trip_energy``)."""
        return self._heat

    @property
    def trip_event(self) -> TripEvent | None:
        """Details of the trip, or ``None`` if the breaker is closed."""
        return self._trip_event

    def set_rating(self, rated_w: float) -> None:
        """Re-target the protection threshold (accumulated heat persists).

        Models a *configurable* protection element: modern iPDUs enforce
        per-outlet power limits in firmware, and PAD's vDEB controller
        legitimately moves those limits when it reassigns soft budgets.
        """
        if rated_w <= 0.0:
            raise PowerTopologyError("rating must be positive")
        self._config = self._config.with_rating(rated_w)

    def time_to_trip(self, power_w: float) -> float:
        """Seconds until trip if ``power_w`` were held constant from now.

        Returns ``inf`` at or below the rating and ``0`` at/above the
        instantaneous threshold. Useful for attack planning and for tests.
        """
        ratio = power_w / self._config.rated_w
        if ratio >= self._config.instant_trip_ratio:
            return 0.0
        if ratio <= 1.0:
            return math.inf
        remaining = self._config.trip_energy - self._heat
        return max(0.0, remaining / (ratio * ratio - 1.0))

    def step(self, power_w: float, dt: float, time_s: float = 0.0) -> bool:
        """Advance the breaker by ``dt`` under load ``power_w``.

        Returns:
            True if the breaker tripped during this step (it stays open
            afterwards; subsequent steps return False).

        Raises:
            PowerTopologyError: on non-positive ``dt`` or negative power.
        """
        if dt <= 0.0:
            raise PowerTopologyError(f"dt must be positive, got {dt}")
        if power_w < 0.0:
            raise PowerTopologyError(f"power must be non-negative, got {power_w}")
        if self._tripped:
            return False
        ratio = power_w / self._config.rated_w
        if ratio >= self._config.instant_trip_ratio:
            self._open(time_s, power_w, ratio, instantaneous=True)
            return True
        if ratio > 1.0:
            self._heat += (ratio * ratio - 1.0) * dt
            if self._heat >= self._config.trip_energy:
                self._open(time_s, power_w, ratio, instantaneous=False)
                return True
        else:
            self._heat *= math.exp(-dt / self._config.cooldown_tau_s)
        return False

    def _open(
        self, time_s: float, power_w: float, ratio: float, instantaneous: bool
    ) -> None:
        self._tripped = True
        self._trip_event = TripEvent(
            time_s=time_s,
            power_w=power_w,
            overload_ratio=ratio,
            instantaneous=instantaneous,
        )

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint (the rating is
        included because re-targeting changes future heating)."""
        return {
            "heat": self._heat,
            "tripped": self._tripped,
            "rated_w": self._config.rated_w,
        }

    def reset(self) -> None:
        """Close the breaker and clear accumulated heat (manual re-arm)."""
        self._tripped = False
        self._heat = 0.0
        self._trip_event = None
