"""Intelligent power distribution units (iPDUs).

The paper's two-stage distribution (Fig. 4) has a cluster-level PDU feeding
rack-level PDUs. Modern iPDUs can *enforce a power budget per outlet* — a
soft limit ``lambda_i * P_r`` per rack — and that enforcement capability is
exactly what PAD's vDEB controller piggybacks on to steer battery usage.

Each PDU pairs a configurable soft limit (management plane) with a circuit
breaker (protection plane). Exceeding the soft limit is a management event;
only sustained or extreme overload of the *breaker* loses power.
"""

from __future__ import annotations

from ..config import BreakerConfig
from ..errors import PowerTopologyError
from .breaker import CircuitBreaker


class RackPDU:
    """The PDU (and breaker) feeding one rack.

    Args:
        rack_id: Index of the rack this PDU feeds.
        soft_limit_w: Management-plane budget ``lambda_i * P_r``.
        breaker_rating_w: Hard protection rating; must be at least the soft
            limit (a breaker that trips inside the allowed budget would be
            a mis-design).
        breaker_shape: Trip-curve shape parameters.
    """

    def __init__(
        self,
        rack_id: int,
        soft_limit_w: float,
        breaker_rating_w: float,
        breaker_shape: BreakerConfig | None = None,
    ) -> None:
        if soft_limit_w <= 0.0:
            raise PowerTopologyError("soft limit must be positive")
        if breaker_rating_w < soft_limit_w:
            raise PowerTopologyError(
                f"rack {rack_id}: breaker rating {breaker_rating_w:.0f} W "
                f"below soft limit {soft_limit_w:.0f} W"
            )
        shape = breaker_shape or BreakerConfig()
        self.rack_id = rack_id
        self._soft_limit_w = soft_limit_w
        self.breaker = CircuitBreaker(shape.with_rating(breaker_rating_w))

    @property
    def soft_limit_w(self) -> float:
        """Current management-plane power budget for this rack."""
        return self._soft_limit_w

    def set_soft_limit(self, soft_limit_w: float) -> None:
        """Adjust the outlet budget (the iPDU capability vDEB relies on)."""
        if soft_limit_w <= 0.0:
            raise PowerTopologyError("soft limit must be positive")
        if soft_limit_w > self.breaker.rated_w:
            raise PowerTopologyError(
                f"rack {self.rack_id}: soft limit {soft_limit_w:.0f} W above "
                f"breaker rating {self.breaker.rated_w:.0f} W"
            )
        self._soft_limit_w = soft_limit_w

    def over_soft_limit(self, power_w: float) -> float:
        """Power above the soft limit (zero if within budget)."""
        return max(0.0, power_w - self._soft_limit_w)

    def step(self, power_w: float, dt: float, time_s: float = 0.0) -> bool:
        """Advance the rack breaker; returns True if it tripped this step."""
        return self.breaker.step(power_w, dt, time_s)

    @property
    def is_tripped(self) -> bool:
        """True once the rack breaker has opened."""
        return self.breaker.is_tripped

    def reset(self) -> None:
        """Re-arm the breaker."""
        self.breaker.reset()


class ClusterPDU:
    """The cluster-level PDU feeding all rack PDUs.

    Holds the global budget ``P_PDU`` and the cluster breaker. The per-rack
    soft limits live in the :class:`RackPDU` objects; this class validates
    that their sum respects the paper's Eq. (2).
    """

    def __init__(
        self,
        budget_w: float,
        breaker_shape: BreakerConfig | None = None,
        breaker_margin: float = 1.0,
    ) -> None:
        if budget_w <= 0.0:
            raise PowerTopologyError("PDU budget must be positive")
        if breaker_margin < 1.0:
            raise PowerTopologyError("breaker margin must be >= 1")
        shape = breaker_shape or BreakerConfig()
        self._budget_w = budget_w
        self.breaker = CircuitBreaker(shape.with_rating(budget_w * breaker_margin))

    @property
    def budget_w(self) -> float:
        """The cluster power budget ``P_PDU`` in watts."""
        return self._budget_w

    def validate_soft_limits(self, rack_pdus: "list[RackPDU]") -> None:
        """Enforce paper Eq. (2): ``sum(lambda_i * P_r) <= P_PDU``.

        Raises:
            PowerTopologyError: if the outlet budgets oversubscribe the
                cluster budget.
        """
        total = sum(pdu.soft_limit_w for pdu in rack_pdus)
        if total > self._budget_w * (1.0 + 1e-9):
            raise PowerTopologyError(
                f"rack soft limits sum to {total:.0f} W, above the cluster "
                f"budget {self._budget_w:.0f} W (Eq. 2 violated)"
            )

    def step(self, power_w: float, dt: float, time_s: float = 0.0) -> bool:
        """Advance the cluster breaker; True if it tripped this step."""
        return self.breaker.step(power_w, dt, time_s)

    @property
    def is_tripped(self) -> bool:
        """True once the cluster breaker has opened."""
        return self.breaker.is_tripped

    def reset(self) -> None:
        """Re-arm the breaker."""
        self.breaker.reset()
