"""Declarative grid-event specifications — the *what/when* of a sag.

A :class:`GridPlan` is a picklable, validated list of
:class:`GridEventSpec` dataclasses, windowed the same way attack and
fault windows are: each spec names a time window, the racks it touches
(``None`` = the whole facility), and its event-specific parameters. The
:class:`~repro.grid.injector.GridInjector` turns the plan into per-step
pipeline actions and typed :class:`~repro.sim.events.GridEvent`
publications, exactly mirroring the fault machinery (PR 4).

Plans are deliberately dumb data — floats, ints and tuples, no
simulator handles, no numpy arrays, no randomness — so a plan can ride
inside a frozen :class:`~repro.search.space.AttackCandidate` or sweep
cell through a process pool and replay identically everywhere.

The physical model, shared by every backend:

* a **voltage sag** transfers the affected feed to battery: the utility
  can serve only ``1 - depth`` of its normal power, so the defense must
  ride the remainder through on stored energy or shed/cap the load.
  Protection derates accordingly — drawing more than the sagged feed
  supports heats the (enforcement-side) breakers, while *detection*
  keeps using nominal ratings, the same split
  :class:`~repro.faults.spec.BreakerMisrating` established;
* a **utility brownout** derates the whole facility feed the same way,
  without per-rack targeting;
* a **frequency-regulation duty** cyclically discharges a commanded
  power into the local load (behind-the-meter export) whenever the
  pack sits above its contracted floor, pre-draining the SoC slice the
  paper's defense budget silently assumed was full.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

from ..errors import ConfigError
from ..faults.spec import _normalised_racks, reject_overlapping_windows

__all__ = [
    "FrequencyRegulationDuty",
    "GridEventSpec",
    "GridPlan",
    "UtilityBrownout",
    "VoltageSag",
]


class GridEventSpec:
    """Base class for one declarative grid event.

    Concrete specs are frozen dataclasses carrying ``start_s``/``end_s``
    plus a ``racks`` tuple (``None`` = the whole facility). ``kind`` is
    the stable label used in :class:`~repro.sim.events.GridEvent`
    streams, journals and reports. Grid events are always windowed —
    there is no one-shot grid damage — but ``one_shot`` is kept as a
    class attribute so the shared window/overlap validation helpers
    treat fault and grid specs uniformly.
    """

    kind: ClassVar[str] = "grid-event"
    one_shot: ClassVar[bool] = False

    def active_at(self, time_s: float) -> bool:
        """Whether the event is in force at ``time_s``."""
        return self.start_s <= time_s < self.end_s  # type: ignore[attr-defined]

    def rack_tuple(self, racks: int) -> "tuple[int, ...]":
        """The concrete racks this spec touches in a ``racks``-wide cluster."""
        if self.racks is None:  # type: ignore[attr-defined]
            return tuple(range(racks))
        return self.racks  # type: ignore[attr-defined]

    def validate_for(self, racks: int) -> None:
        """Check the spec fits a cluster of ``racks`` racks."""
        targeted = self.racks  # type: ignore[attr-defined]
        if targeted is not None and targeted[-1] >= racks:
            raise ConfigError(
                f"{self.kind}: rack {targeted[-1]} outside a "
                f"{racks}-rack cluster"
            )

    def _check_window(self) -> None:
        start = self.start_s  # type: ignore[attr-defined]
        end = self.end_s  # type: ignore[attr-defined]
        if start < 0.0:
            raise ConfigError(f"{self.kind}: start_s must be >= 0")
        if not end > start:
            raise ConfigError(
                f"{self.kind}: grid window must satisfy end_s > start_s"
            )


@dataclass(frozen=True)
class VoltageSag(GridEventSpec):
    """The utility feed sags; the UPS transfers the deficit to battery.

    While the window is open the utility can serve only ``1 - depth`` of
    its normal power on the targeted racks (and, for a facility-wide
    sag, on the mid-tier and cluster feeds too). Schemes see the feed
    factor through :class:`~repro.defense.base.StepState` and raise
    battery discharge to ride the gap through; protection enforces the
    sagged feed, so a rack whose ride-through fails browns out into an
    inverse-time trip instead of drawing power that is not there.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        depth: Fraction of the feed lost, in ``(0, 1)`` (a 0.2-deep sag
            leaves 80 % of the feed).
        racks: Affected racks; ``None`` sags the whole facility,
            including the mid-tier and cluster feeds.
    """

    kind: ClassVar[str] = "voltage-sag"

    start_s: float
    end_s: float
    depth: float
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if not 0.0 < self.depth < 1.0:
            raise ConfigError("voltage-sag: depth must be in (0, 1)")


@dataclass(frozen=True)
class UtilityBrownout(GridEventSpec):
    """Sustained facility-wide derating of the available utility power.

    The slow sibling of :class:`VoltageSag`: the utility asks the
    facility to shave ``derate`` of its draw for the whole window.
    Always facility-wide — a brownout has no rack targeting.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        derate: Fraction of the feed unavailable, in ``(0, 1)``.
    """

    kind: ClassVar[str] = "utility-brownout"

    start_s: float
    end_s: float
    derate: float

    #: Brownouts hit every feed; kept as a field-shaped constant so the
    #: shared windowing/overlap helpers treat all grid specs uniformly.
    racks: ClassVar[None] = None

    def __post_init__(self) -> None:
        self._check_window()
        if not 0.0 < self.derate < 1.0:
            raise ConfigError("utility-brownout: derate must be in (0, 1)")


@dataclass(frozen=True)
class FrequencyRegulationDuty(GridEventSpec):
    """A contracted frequency-regulation duty cycle on the rack packs.

    While the window is open the pack alternates between an *on* phase —
    discharging ``power_w`` into the local load (behind-the-meter, so
    the utility draw drops by the same amount) — and an *off* phase in
    which the normal opportunistic charger refills it. Discharge is
    gated on the pack holding more than ``floor_soc``: the contract
    never drains the pack below its floor, but it *does* pre-drain the
    slice the defense budget silently assumed was full.

    Attributes:
        start_s: Window start (inclusive).
        end_s: Window end (exclusive).
        power_w: Commanded per-rack discharge power during on phases.
        period_s: Full cycle length.
        duty: On-phase fraction of the period, in ``(0, 1)``.
        floor_soc: SoC at or below which the duty stops discharging.
        racks: Enrolled racks, ``None`` for the whole fleet.
    """

    kind: ClassVar[str] = "freq-regulation"

    start_s: float
    end_s: float
    power_w: float
    period_s: float = 120.0
    duty: float = 0.5
    floor_soc: float = 0.2
    racks: "tuple[int, ...] | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "racks", _normalised_racks(self.racks))
        self._check_window()
        if self.power_w <= 0.0:
            raise ConfigError("freq-regulation: power_w must be positive")
        if self.period_s <= 0.0:
            raise ConfigError("freq-regulation: period_s must be positive")
        if not 0.0 < self.duty < 1.0:
            raise ConfigError("freq-regulation: duty must be in (0, 1)")
        if not 0.0 <= self.floor_soc < 1.0:
            raise ConfigError(
                "freq-regulation: floor_soc must be in [0, 1)"
            )

    def on_phase_at(self, time_s: float) -> bool:
        """Whether the duty cycle is in its discharge phase at ``time_s``.

        A pure function of the spec and the timestamp — no state — so
        every backend (and the fast-forward verifier) recomputes the
        same phase from the same clock.
        """
        if not self.active_at(time_s):
            return False
        return ((time_s - self.start_s) % self.period_s) < (
            self.duty * self.period_s
        )


@dataclass(frozen=True)
class GridPlan:
    """An ordered, validated, picklable collection of grid-event specs.

    Spec order is semantic: grid events publish in spec order within a
    step, which the differential harness asserts across backends.

    Attributes:
        specs: The grid-event specs, applied in order.
    """

    specs: "tuple[GridEventSpec, ...]" = field(default=())

    def __post_init__(self) -> None:
        specs = tuple(self.specs)
        for spec in specs:
            if not isinstance(spec, GridEventSpec):
                raise ConfigError(
                    f"grid plan entries must be GridEventSpecs, got {spec!r}"
                )
        reject_overlapping_windows(specs, "grid plan")
        object.__setattr__(self, "specs", specs)

    def __len__(self) -> int:
        return len(self.specs)

    def validate_for(self, racks: int) -> None:
        """Check every spec fits a cluster of ``racks`` racks."""
        for spec in self.specs:
            spec.validate_for(racks)

    def edge_times(self) -> "tuple[float, ...]":
        """Every window start/end, sorted — the fast-forward guard set.

        Duty-cycle phase flips inside a regulation window are *not*
        edges here: the injector counts an open window as active, and
        fast-forward never jumps while anything is active, so phases
        can never be leapfrogged.
        """
        times: "set[float]" = set()
        for spec in self.specs:
            times.add(spec.start_s)  # type: ignore[attr-defined]
            times.add(spec.end_s)  # type: ignore[attr-defined]
        return tuple(sorted(times))

    def windows(self) -> "list[tuple[float, float]]":
        """The specs' ``(start_s, end_s)`` pairs, in spec order.

        Used by the runner to refine the step schedule around grid
        activity, the same way attack and fault windows are.
        """
        return [
            (spec.start_s, spec.end_s)  # type: ignore[attr-defined]
            for spec in self.specs
        ]

    def label(self) -> str:
        """A compact deterministic identity label for keys and journals.

        Pure string formatting of the specs' fields — stable across
        processes and platforms, like
        :meth:`~repro.search.space.AttackCandidate.key`.
        """
        if not self.specs:
            return "grid-none"
        parts = []
        for spec in self.specs:
            tag = {
                "voltage-sag": "sag",
                "utility-brownout": "brown",
                "freq-regulation": "freg",
            }.get(spec.kind, spec.kind)
            start = spec.start_s  # type: ignore[attr-defined]
            end = spec.end_s  # type: ignore[attr-defined]
            magnitude = getattr(
                spec, "depth", getattr(spec, "derate", None)
            )
            if magnitude is None:
                magnitude = spec.power_w  # type: ignore[attr-defined]
            parts.append(
                f"{tag}{magnitude:g}@{start:g}-{end:g}".replace(".", "p")
            )
        return "grid-" + "+".join(parts)
