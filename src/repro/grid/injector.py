"""Turns a :class:`~repro.grid.spec.GridPlan` into pipeline actions.

The injector is owned by a
:class:`~repro.sim.datacenter.DataCenterSimulation` and runs as its own
pipeline stage (after faults, before defense). Each step it:

1. walks the plan for window edges — a grid event opening publishes a
   typed :class:`~repro.sim.events.GridEventStarted`, an expiring one a
   :class:`~repro.sim.events.GridEventCleared` — always in plan order,
   so event streams are deterministic and comparable across backends;
2. recomposes the continuous grid state on any edge: the per-rack
   **feed factor** (what fraction of each rack's budgeted utility feed
   the sagged/browned-out grid can still serve), the facility-wide
   factor applied to mid-tier and cluster feeds, and the enforcement
   derate handed to the breaker bank;
3. while a frequency-regulation window is open, recomputes the duty
   command every step (the phase is a pure function of the clock).

Unlike the fault injector, the grid injector is completely stateless
beyond its active flags: no RNG streams, no captured sensor state.
Everything it exposes is recomputed from the plan and the clock, which
is what makes grid runs trivially bit-identical across backends and
snapshot forks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..sim.events import GridEventCleared, GridEventStarted
from .spec import (
    FrequencyRegulationDuty,
    GridPlan,
    UtilityBrownout,
    VoltageSag,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..sim.datacenter import DataCenterSimulation, StepContext

__all__ = ["GridInjector"]


class GridInjector:
    """Per-simulation grid machinery driven by one :class:`GridPlan`.

    Args:
        plan: The declarative plan; validated against the cluster size.
        sim: The owning simulation (scheme, bus, breakers).
    """

    def __init__(self, plan: GridPlan, sim: "DataCenterSimulation") -> None:
        racks = sim.cluster.racks
        plan.validate_for(racks)
        self._plan = plan
        self._sim = sim
        self._racks = racks
        self._active = [False] * len(plan.specs)
        # Composed continuous state, rebuilt on any window edge.
        self._feed_factor: "np.ndarray | None" = None
        self._facility_factor = 1.0
        self._freg_active: "list[int]" = []
        # Per-step duty command, recomputed while any regulation window
        # is open (the phase flips inside the window).
        self._freg_w: "np.ndarray | None" = None
        self._freg_floor: "np.ndarray | None" = None

    # ------------------------------------------------------------------ #
    # Pipeline stage                                                      #
    # ------------------------------------------------------------------ #

    def stage_grid(self, ctx: "StepContext") -> None:
        """Process grid-window edges for this step (pipeline stage)."""
        edges = False
        for index, spec in enumerate(self._plan.specs):
            active = spec.active_at(ctx.time_s)
            if active == self._active[index]:
                continue
            edges = True
            self._active[index] = active
            racks = spec.rack_tuple(self._racks)
            if active:
                self._sim.bus.publish(GridEventStarted(
                    time_s=ctx.time_s, event=spec.kind, racks=racks,
                ))
            else:
                self._sim.bus.publish(GridEventCleared(
                    time_s=ctx.time_s, event=spec.kind, racks=racks,
                ))
        if edges:
            self._recompose()
        if self._freg_active:
            self._update_freg(ctx.time_s)

    def _recompose(self) -> None:
        """Rebuild the composed grid state from the active specs."""
        sim = self._sim
        feed = np.ones(self._racks)
        facility = 1.0
        any_feed = False
        self._freg_active = []
        for index, spec in enumerate(self._plan.specs):
            if not self._active[index]:
                continue
            if isinstance(spec, VoltageSag):
                factor = 1.0 - spec.depth
                if spec.racks is None:
                    feed *= factor
                    facility *= factor
                else:
                    feed[list(spec.racks)] *= factor
                any_feed = True
            elif isinstance(spec, UtilityBrownout):
                factor = 1.0 - spec.derate
                feed *= factor
                facility *= factor
                any_feed = True
            elif isinstance(spec, FrequencyRegulationDuty):
                self._freg_active.append(index)
        self._feed_factor = feed if any_feed else None
        self._facility_factor = facility
        if any_feed:
            # One derate entry per breaker in bank order: rack entries
            # carry the per-rack feed factor; mid-tier and cluster
            # entries carry the facility-wide factor (a rack-targeted
            # sag does not derate the feeds above it).
            derate = np.ones(sim.topology.n_breakers)
            derate[: self._racks] = feed
            derate[self._racks:] = facility
            sim.set_grid_derate(derate)
        else:
            sim.set_grid_derate(None)
        if not self._freg_active:
            self._freg_w = None
            self._freg_floor = None

    def _update_freg(self, time_s: float) -> None:
        """Recompute the duty command from the clock (phase is pure)."""
        command = np.zeros(self._racks)
        floor = np.zeros(self._racks)
        any_on = False
        for index in self._freg_active:
            spec = self._plan.specs[index]
            if not spec.on_phase_at(time_s):
                continue
            targets = list(spec.rack_tuple(self._racks))
            command[targets] += spec.power_w
            floor[targets] = np.maximum(floor[targets], spec.floor_soc)
            any_on = True
        self._freg_w = command if any_on else None
        self._freg_floor = floor if any_on else None

    # ------------------------------------------------------------------ #
    # Scheme-facing state                                                 #
    # ------------------------------------------------------------------ #

    @property
    def feed_factor(self) -> "np.ndarray | None":
        """Per-rack fraction of the budgeted feed the grid can serve.

        ``None`` while no sag or brownout is active (the healthy path
        carries no array at all, keeping it bitwise identical to
        grid-free builds).
        """
        return self._feed_factor

    @property
    def facility_factor(self) -> float:
        """Facility-wide feed factor (mid-tier and cluster feeds)."""
        return self._facility_factor

    def freg_command(self) -> "tuple[np.ndarray | None, np.ndarray | None]":
        """``(power_w, floor_soc)`` duty vectors, or ``(None, None)``."""
        return self._freg_w, self._freg_floor

    # ------------------------------------------------------------------ #
    # Introspection                                                       #
    # ------------------------------------------------------------------ #

    @property
    def plan(self) -> GridPlan:
        """The driving plan."""
        return self._plan

    @property
    def any_active(self) -> bool:
        """True while any grid window is open."""
        return any(self._active)

    def next_edge_after(self, time_s: float) -> float:
        """Earliest grid edge strictly after ``time_s`` (``inf`` if none)."""
        upcoming = [
            t for t in self._plan.edge_times() if t > time_s + 1e-9
        ]
        return min(upcoming, default=float("inf"))

    def ff_state(self) -> dict:
        """Evolving state for the fast-forward fingerprint.

        Only the active flags evolve — everything else is a pure
        function of the plan and the clock (and fast-forward refuses to
        jump while any window is open, so duty phases are never
        fingerprinted mid-flight).
        """
        return {"active": np.array(self._active, dtype=bool)}

    def active_specs(self) -> "tuple[int, ...]":
        """Positions of currently-active specs (diagnostics/tests)."""
        return tuple(
            index for index, on in enumerate(self._active) if on
        )
