"""Battery-reserve partitioning between ride-through and defense.

The same rack packs serve two masters: the defense schemes spend them
against power attacks, and the UPS spends them riding grid disturbances
through. Without a policy the two drains silently compose — a sag that
arrives mid-attack finds the pack already spent, and the facility
browns out with no warning. :class:`ReservePolicy` draws the line: SoC
below ``ride_through_floor_soc`` belongs to ride-through and is
off-limits to the defense budget; everything above it is the defense
slice. When the defense slice runs dry the schemes publish
:class:`~repro.sim.events.ReserveBreached`, shed load, and escalate off
NORMAL — graceful degradation instead of a silent blackout.

The policy is a frozen, picklable config object living on
:attr:`~repro.config.DataCenterConfig.reserve`, so it flows through
sweep cells, search candidates and cohort families like every other
knob, and :class:`~repro.search.tuner.DefenseKnobs` can price it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["ReservePolicy"]


@dataclass(frozen=True)
class ReservePolicy:
    """Partition of battery SoC between ride-through floor and defense.

    Attributes:
        ride_through_floor_soc: SoC fraction reserved for grid
            ride-through, in ``[0, 1)``. Defense discharge (vDEB
            boosts, capping avoidance) only draws on charge *above*
            this floor; ride-through discharge may drain all the way to
            the pack's own low-voltage disconnect.
    """

    ride_through_floor_soc: float = 0.5

    def __post_init__(self) -> None:
        floor = self.ride_through_floor_soc
        if not 0.0 <= floor < 1.0:
            raise ConfigError(
                "reserve policy: ride_through_floor_soc must be in [0, 1)"
            )
