"""Grid-side disturbance modelling (voltage sags, regulation duty).

The paper's defense budget assumes a healthy utility feed; this package
models the grid events a real battery-backed facility must also spend
its batteries on — voltage sags the UPS rides through on battery,
frequency-regulation duty cycles that pre-drain state of charge, and
utility brownouts that derate the available feed — so an attacker who
times a power spike to coincide with a depleted grid event faces the
defense the facility *actually* has left.

Public surface:

* :class:`~repro.grid.spec.GridPlan` and its windowed specs
  (:class:`~repro.grid.spec.VoltageSag`,
  :class:`~repro.grid.spec.FrequencyRegulationDuty`,
  :class:`~repro.grid.spec.UtilityBrownout`) — declarative, picklable,
  validated;
* :class:`~repro.grid.reserve.ReservePolicy` — the SoC partition between
  ride-through floor and defense budget.

The :class:`~repro.grid.injector.GridInjector` is an engine-side detail
owned by :class:`~repro.sim.datacenter.DataCenterSimulation`; the sim
layer imports it directly (mirroring the fault injector) so this package
root stays import-cycle-free for :mod:`repro.config`.
"""

from .reserve import ReservePolicy
from .spec import (
    FrequencyRegulationDuty,
    GridEventSpec,
    GridPlan,
    UtilityBrownout,
    VoltageSag,
)

__all__ = [
    "FrequencyRegulationDuty",
    "GridEventSpec",
    "GridPlan",
    "ReservePolicy",
    "UtilityBrownout",
    "VoltageSag",
]
