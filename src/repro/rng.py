"""Deterministic random-number utilities.

All stochastic components of the simulator (synthetic trace generation,
load noise, attack jitter) draw from :class:`numpy.random.Generator`
instances created here, so a single integer seed reproduces an entire
experiment bit-for-bit.

Sub-streams are derived with ``spawn_key``-style child seeding: each named
component gets an independent stream, so adding randomness to one module
does not perturb the draws seen by another.
"""

from __future__ import annotations

import zlib

import numpy as np

DEFAULT_SEED = 20160618  # ISCA 2016 conference date; any constant works.


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a root random generator.

    Args:
        seed: Root seed. ``None`` selects :data:`DEFAULT_SEED` (the library
            is deterministic by default; pass entropy explicitly if you want
            varied runs).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def child_rng(seed: int | None, name: str) -> np.random.Generator:
    """Derive an independent, named sub-stream from ``seed``.

    The ``name`` is hashed (stable CRC32, not Python's randomised ``hash``)
    and mixed into the seed sequence, so ``child_rng(7, "trace")`` and
    ``child_rng(7, "attack")`` are independent but each individually
    reproducible.
    """
    root = DEFAULT_SEED if seed is None else seed
    tag = zlib.crc32(name.encode("utf-8"))
    return np.random.default_rng(np.random.SeedSequence(entropy=root, spawn_key=(tag,)))
