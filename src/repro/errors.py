"""Exception hierarchy for the PAD reproduction library.

Every exception raised by this package derives from :class:`ReproError`
so callers can catch library failures without masking programming errors
(``TypeError``, ``KeyError`` from their own code, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration object failed validation.

    Raised eagerly at construction time (``__post_init__``) so that invalid
    setups fail before any simulation work starts.
    """


class TraceFormatError(ReproError):
    """A workload trace file or record does not match the expected schema."""


class PowerTopologyError(ReproError):
    """The power-delivery tree is inconsistent.

    Examples: a rack attached to two PDUs, soft limits that exceed the
    breaker rating, or a budget split that violates the oversubscription
    constraints of paper Eq. (1)/(2).
    """


class BatteryError(ReproError):
    """An energy store was driven outside its physical envelope.

    Raised for programming errors such as charging with negative power;
    *running out of energy* is not an error — it is a modelled state.
    """


class SimulationError(ReproError):
    """The simulation engine was used inconsistently.

    Examples: stepping a finished simulation, registering a hook after
    the run started, or a negative time step.
    """


class AttackError(ReproError):
    """An attack scenario is internally inconsistent.

    Examples: a spike width longer than the spike period, or an attacker
    given control of more nodes than exist in the victim rack.
    """


class FaultInjectionError(ReproError):
    """A fault plan is invalid or could not be applied to the simulation.

    Examples: a fault window that ends before it starts, a fault aimed at
    racks outside the cluster, or a capacity fade outside ``[0, 1)``.
    Distinct from :class:`SimulationError` so callers can tell a broken
    fault *plan* apart from a broken simulation setup.
    """


class SearchError(ReproError):
    """An adversarial search or tuning run is invalid or inconsistent.

    Examples: an empty attack space, probe fractions outside ``(0, 1)``,
    or a search journal that belongs to a different candidate set.
    Distinct from :class:`AttackError` (one malformed scenario) — this is
    the *search over* scenarios being misused.
    """


class SweepExecutionError(ReproError):
    """A sweep cell failed to *execute* (worker crash, timeout, exhaustion).

    Raised or recorded by the sweep executor when a cell's worker dies or
    hangs — as opposed to the cell being *invalid*, which surfaces eagerly
    as :class:`ConfigError`/:class:`SimulationError` at construction time.
    Callers can therefore distinguish "cell failed" from "cell invalid".
    """
