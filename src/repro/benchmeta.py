"""Machine-readable environment metadata for ``BENCH_*.json`` reports.

Every benchmark report carries an ``environment`` block describing the
toolchain the numbers were recorded under — interpreter, numpy and
(optional) numba versions, the active compiled-kernel provider and the
CPU count — plus a one-line ``protocol`` note (repeats, interleaving).
The block replaces the old free-text ``recorded_on`` string: a reader
can now tell *why* two baselines differ instead of guessing from prose.
``scripts/check_bench.py`` ignores it entirely; it gates only on the
speedup fields.
"""

from __future__ import annotations

import os
import platform


def bench_environment(protocol: str) -> dict:
    """The environment block stamped into a benchmark report.

    Args:
        protocol: One-line measurement-protocol note, e.g.
            ``"min of 3 interleaved passes"``.
    """
    import numpy

    try:
        import numba

        numba_version: "str | None" = numba.__version__
    except ImportError:
        numba_version = None
    from .kernels import active_provider

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "numba": numba_version,
        "kernel_provider": active_provider(),
        "cpu_count": os.cpu_count(),
        "protocol": protocol,
    }
